//! The serving mediator: admission control + per-session query runs.
//!
//! A [`MediatorServer`] accepts client connections. Each connection
//! submits one query (a `Submit` frame carrying a JSON workload spec) and
//! gets back the session lifecycle as frames:
//!
//! ```text
//! Submit ─→ Rejected                        (bad spec / backlog full)
//!        └→ Queued* ─→ Accepted ─→ Trace* ─→ Done | Error
//! ```
//!
//! Admission is the sans-io `dqs_core::session::SessionTable` behind a
//! mutex: at most `max_concurrent` sessions execute at once, each query
//! re-planned under `memory_bytes / max_concurrent` — the §4 memory bound
//! applied per-session so concurrent queries cannot starve each other —
//! and a bounded FIFO backlog absorbs bursts. Each admitted session runs
//! a full engine on its own [`RealTimeDriver`]: in-process threaded
//! wrappers by default, or remote sources dialled out to the configured
//! wrapper-servers.
//!
//! Wrapper specs may declare replica groups (`id=host:port,host:port`),
//! in which case each scan opens on the best live endpoint of its group
//! (rate-aware, via `dqs_replica::ReplicaSet`) through a `FailoverSource`
//! that survives mid-scan endpoint deaths, and a background prober keeps
//! the health tables fresh between sessions.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dqs_cache::{payload_bytes, CacheConfig, CacheKey, CacheStats, SharedCache};
use dqs_core::session::{Decision, SessionConfig, SessionStats, SessionTable};
use dqs_core::DsePolicy;
use dqs_exec::spec::WorkloadSpec;
use dqs_exec::{
    Engine, EngineEvent, EngineObserver, JsonLinesSink, MaPolicy, Policy, RealTimeDriver, RunError,
    RunMetrics, ScramblingPolicy, SeqPolicy, Workload,
};
use dqs_relop::RelId;
use dqs_replica::{parse_groups, HealthConfig, ReplicaSet};
use dqs_sim::{SeedSplitter, SimTime};
use dqs_source::net::{read_frame, write_frame, Frame};
use dqs_source::{
    BoxSource, FailoverOpts, FailoverSource, RecordingSource, RemoteOpen, RemoteWrapper,
    ReplaySource, SourceError, ThreadedWrapper,
};

/// How often the background prober re-checks replica endpoint liveness.
const PROBE_INTERVAL: Duration = Duration::from_millis(500);
/// Connect timeout for a single liveness probe.
const PROBE_TIMEOUT: Duration = Duration::from_millis(200);

/// Mediator service configuration.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Queries allowed to execute simultaneously.
    pub max_concurrent: usize,
    /// Submissions allowed to wait beyond the running set.
    pub backlog: usize,
    /// Global memory budget partitioned across running sessions, bytes.
    pub memory_bytes: u64,
    /// Wrapper group specs; empty means in-process threaded wrappers.
    /// Each spec is `;`-separated chunks of either `id=host:port,host:port`
    /// (one logical wrapper with N interchangeable replicas) or bare
    /// `host:port` addresses (each its own single-endpoint wrapper, the
    /// pre-replica spelling). Relation `i` is served by group `i % groups`.
    pub wrappers: Vec<String>,
    /// Read timeout on wrapper sockets (a silent wrapper faults the run).
    pub read_timeout: Duration,
    /// Result-cache budget in bytes; 0 disables the cache. The budget is
    /// carved out of `memory_bytes`, so sessions partition what remains —
    /// §4.2 M-schedulability stays honest about total mediator memory.
    pub cache_bytes: u64,
    /// Per-entry TTL for cached scans; `None` means entries only leave by
    /// LRU eviction or an explicit `Invalidate`.
    pub cache_ttl: Option<Duration>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            max_concurrent: 2,
            backlog: 8,
            memory_bytes: 64 << 20,
            wrappers: Vec::new(),
            read_timeout: Duration::from_secs(30),
            cache_bytes: 0,
            cache_ttl: None,
        }
    }
}

struct Shared {
    table: Mutex<SessionTable>,
    /// Signalled whenever a slot frees (queued sessions re-check).
    cond: Condvar,
    opts: ServeOpts,
    /// The wrapper result cache all sessions share; `None` when disabled.
    cache: Option<Arc<SharedCache>>,
    /// One health-tracked replica set per parsed wrapper group; empty when
    /// the mediator runs in-process wrappers.
    replica_sets: Vec<Arc<ReplicaSet>>,
    stop: AtomicBool,
}

/// The mediator service: accept loop + session threads.
#[derive(Debug)]
pub struct MediatorServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Live client connections, severed at shutdown so handler threads
    /// blocked in reads unblock promptly.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    /// Per-connection handler threads, joined at shutdown.
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept_thread: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("opts", &self.opts).finish()
    }
}

impl MediatorServer {
    /// Bind and start serving. Port 0 picks an ephemeral port; see
    /// [`MediatorServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, opts: ServeOpts) -> io::Result<MediatorServer> {
        // The cache budget comes out of the global memory budget; sessions
        // partition the remainder. A cache that leaves no session memory is
        // a configuration error, not something to discover at first Submit.
        if opts.cache_bytes >= opts.memory_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "cache budget ({} bytes) must leave session memory within the global budget ({} bytes)",
                    opts.cache_bytes, opts.memory_bytes
                ),
            ));
        }
        let cache = (opts.cache_bytes > 0).then(|| {
            SharedCache::new(CacheConfig {
                budget_bytes: opts.cache_bytes,
                ttl_ms: opts.cache_ttl.map(|d| d.as_millis() as u64),
            })
        });
        // A malformed wrapper spec is a bind-time error, not something to
        // discover at first Submit.
        let replica_sets: Vec<Arc<ReplicaSet>> = if opts.wrappers.is_empty() {
            Vec::new()
        } else {
            parse_groups(&opts.wrappers)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?
                .into_iter()
                .map(|g| Arc::new(ReplicaSet::new(g, HealthConfig::default())))
                .collect()
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            table: Mutex::new(SessionTable::new(SessionConfig {
                max_concurrent: opts.max_concurrent,
                backlog: opts.backlog,
                memory_bytes: opts.memory_bytes - opts.cache_bytes,
            })),
            cond: Condvar::new(),
            opts,
            cache,
            replica_sets,
            stop: AtomicBool::new(false),
        });
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = thread::spawn(move || {
            let mut next_id = 0u64;
            for conn in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(conn) = conn else { continue };
                conn.set_nodelay(true).ok();
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = conn.try_clone() {
                    accept_conns.lock().unwrap().insert(id, clone);
                }
                let session_shared = Arc::clone(&accept_shared);
                let session_conns = Arc::clone(&accept_conns);
                let handle = thread::spawn(move || {
                    serve_client(conn, session_shared);
                    session_conns.lock().unwrap().remove(&id);
                });
                let mut handlers = accept_handlers.lock().unwrap();
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
        });
        let prober = (!shared.replica_sets.is_empty()).then(|| {
            let probe_shared = Arc::clone(&shared);
            thread::spawn(move || probe_replicas(&probe_shared))
        });
        Ok(MediatorServer {
            addr,
            shared,
            conns,
            handlers,
            accept_thread: Some(accept_thread),
            prober,
        })
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Admission counters (running/queued sessions, memory accounting).
    pub fn stats(&self) -> SessionStats {
        self.shared.table.lock().unwrap().stats()
    }

    /// Result-cache counters, when a cache is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.as_ref().map(|c| c.stats())
    }

    /// Point-in-time health of every replica endpoint, grouped by logical
    /// wrapper id; empty when no wrapper groups are configured.
    pub fn replica_health(&self) -> Vec<(String, Vec<dqs_replica::EndpointSnapshot>)> {
        self.shared
            .replica_sets
            .iter()
            .map(|s| (s.id().to_string(), s.snapshot()))
            .collect()
    }

    /// Stop accepting, sever live client connections, and join every
    /// service thread — the accept loop, the replica prober, and all
    /// per-connection handlers — so tests and CI shut the mediator down
    /// without leaking threads or relying on process exit.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        TcpStream::connect(self.addr).ok();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
        if let Some(t) = self.prober.take() {
            t.join().ok();
        }
        let severed: Vec<TcpStream> = {
            let mut map = self.conns.lock().unwrap();
            map.drain().map(|(_, c)| c).collect()
        };
        for conn in severed {
            conn.shutdown(Shutdown::Both).ok();
        }
        let handlers: Vec<JoinHandle<()>> = {
            let mut h = self.handlers.lock().unwrap();
            h.drain(..).collect()
        };
        for h in handlers {
            h.join().ok();
        }
    }

    /// Park the calling thread while the server runs (the `dqs serve`
    /// foreground loop).
    pub fn run_forever(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// Background liveness prober. Between sessions, endpoint health only
/// changes when a scan happens to touch it; a cheap connect-probe per
/// endpoint keeps the tables fresh so the first scan after a crash (or a
/// recovery) already selects well.
fn probe_replicas(shared: &Shared) {
    loop {
        for set in &shared.replica_sets {
            for idx in 0..set.len() {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let up = set
                    .addr(idx)
                    .to_socket_addrs()
                    .ok()
                    .and_then(|mut a| a.next())
                    .map(|a| TcpStream::connect_timeout(&a, PROBE_TIMEOUT).is_ok())
                    .unwrap_or(false);
                if up {
                    set.mark_live(idx);
                } else {
                    set.record_failure(idx);
                }
            }
        }
        // Sleep in slices so shutdown never waits out a full interval.
        let mut slept = Duration::ZERO;
        while slept < PROBE_INTERVAL {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let slice = Duration::from_millis(50).min(PROBE_INTERVAL - slept);
            thread::sleep(slice);
            slept += slice;
        }
    }
}

/// Frame-level reply helper; errors mean the client is gone, which never
/// aborts the server.
fn reply(conn: &mut TcpStream, frame: &Frame) -> bool {
    write_frame(conn, frame).is_ok()
}

/// One client connection: read the submission, walk it through admission,
/// run it, stream the outcome.
fn serve_client(mut conn: TcpStream, shared: Arc<Shared>) {
    // A client that connects and says nothing must not hold a thread
    // forever.
    conn.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let submit = match read_frame(&mut conn) {
        Ok(Some(Frame::Submit {
            strategy,
            trace,
            no_cache,
            seed,
            spec_json,
        })) => (strategy, trace, no_cache, seed, spec_json),
        // A refresh request is a complete conversation of its own: drop
        // the named scans (or everything) and report what was freed.
        Ok(Some(Frame::Invalidate { rel })) => {
            let (entries, bytes) = match &shared.cache {
                Some(cache) => cache.invalidate(rel),
                None => (0, 0),
            };
            reply(&mut conn, &Frame::Invalidated { entries, bytes });
            conn.shutdown(Shutdown::Both).ok();
            return;
        }
        Ok(Some(_)) | Ok(None) | Err(_) => return,
    };
    let (strategy, trace, no_cache, seed, spec_json) = submit;

    // Validate before admission: a bad spec must not consume a slot.
    if !matches!(strategy.as_str(), "seq" | "ma" | "scr" | "dse") {
        reply(
            &mut conn,
            &Frame::Rejected {
                reason: format!("unknown strategy {strategy:?} (seq|ma|scr|dse)"),
            },
        );
        return;
    }
    let mut workload =
        match WorkloadSpec::from_json(&spec_json).and_then(WorkloadSpec::into_workload) {
            Ok(w) => w,
            Err(e) => {
                reply(
                    &mut conn,
                    &Frame::Rejected {
                        reason: e.to_string(),
                    },
                );
                return;
            }
        };
    if let Some(seed) = seed {
        workload.config.seed = seed;
    }

    // Admission.
    let (session, memory_bytes) = {
        let mut table = shared.table.lock().unwrap();
        match table.submit() {
            Decision::Reject { reason } => {
                drop(table);
                reply(&mut conn, &Frame::Rejected { reason });
                return;
            }
            Decision::Admit {
                session,
                memory_bytes,
            } => (session, memory_bytes),
            Decision::Queue { session, position } => {
                let memory = table.partition_bytes();
                // Tell the client it waits, then wait for promotion.
                drop(table);
                if !reply(
                    &mut conn,
                    &Frame::Queued {
                        position: position as u32,
                    },
                ) {
                    let mut table = shared.table.lock().unwrap();
                    table.finish(session);
                    return;
                }
                let mut table = shared.table.lock().unwrap();
                while !table.is_running(session) {
                    if shared.stop.load(Ordering::SeqCst) {
                        table.finish(session);
                        return;
                    }
                    let (t, _) = shared
                        .cond
                        .wait_timeout(table, Duration::from_millis(200))
                        .unwrap();
                    table = t;
                }
                (session, memory)
            }
        }
    };

    // From here on the slot is held: every exit path must release it —
    // and release it *before* the terminal frame goes out, so a client
    // that saw the outcome never observes its session still counted as
    // running.
    let terminal = run_admitted_session(
        &mut conn,
        &shared,
        session,
        memory_bytes,
        &strategy,
        trace,
        no_cache,
        workload,
    );
    {
        let mut table = shared.table.lock().unwrap();
        table.finish(session);
    }
    shared.cond.notify_all();
    if let Some(frame) = terminal {
        reply(&mut conn, &frame);
    }
    conn.shutdown(Shutdown::Both).ok();
}

/// Execute an admitted session, streaming progress frames; returns the
/// terminal frame the caller sends after releasing the slot.
#[allow(clippy::too_many_arguments)]
fn run_admitted_session(
    conn: &mut TcpStream,
    shared: &Shared,
    session: u64,
    memory_bytes: u64,
    strategy: &str,
    trace: bool,
    no_cache: bool,
    mut workload: Workload,
) -> Option<Frame> {
    if !reply(
        conn,
        &Frame::Accepted {
            session,
            memory_bytes,
        },
    ) {
        return None;
    }
    // The session's query plans against its partition, not the global
    // budget.
    workload.config.memory_bytes = memory_bytes;

    // Build the driver: cached replays where the shared cache can serve a
    // relation, live sources (remote wrappers or in-process threads,
    // recorded on the way through) everywhere else.
    let cache = if no_cache {
        None
    } else {
        shared.cache.as_ref()
    };
    let (driver, outcomes, pins) =
        match build_driver(&workload, &shared.opts, &shared.replica_sets, cache) {
            Ok(built) => built,
            Err(e) => {
                return Some(Frame::Error {
                    code: 2,
                    message: format!("wrapper connect failed: {e}"),
                });
            }
        };
    // Remember which endpoint each scan opened on, so operators can ask
    // the admission table where a session's load actually landed.
    if !pins.is_empty() {
        let mut table = shared.table.lock().unwrap();
        for (rel, endpoint) in &pins {
            table.record_pin(session, rel.0, endpoint);
        }
    }

    let mut sink = JsonLinesSink::new(TraceFrames {
        conn: conn.try_clone().ok(),
        enabled: trace,
        line: Vec::new(),
    });
    // Cache outcomes are decided before the engine runs (at source build
    // time), so they lead the trace at t=0. The engine's own metrics
    // observer never sees these events; the counters are patched into the
    // final metrics below.
    for o in &outcomes {
        let ev = match o.served {
            Some((tuples, bytes)) => EngineEvent::CacheHit {
                rel: o.rel,
                tuples,
                bytes,
            },
            None => EngineEvent::CacheMiss { rel: o.rel },
        };
        sink.on_event(SimTime::ZERO, &ev);
    }
    let result = run_with_strategy(strategy, &workload, sink, driver);
    Some(match result {
        Ok(mut m) => {
            for o in &outcomes {
                match o.served {
                    Some((_, bytes)) => {
                        m.cache_hits += 1;
                        m.cache_bytes_served += bytes;
                    }
                    None => m.cache_misses += 1,
                }
            }
            Frame::Done {
                metrics_json: metrics_json(&m),
            }
        }
        Err(e) => Frame::Error {
            code: 1,
            message: e.to_string(),
        },
    })
}

/// How one relation's scan was sourced: served from cache (`tuples`,
/// payload `bytes`) or fetched live.
struct CacheOutcome {
    rel: RelId,
    served: Option<(u64, u64)>,
}

/// Build the session's driver: one source per catalog relation. With a
/// cache, resident scans become [`ReplaySource`]s — no wrapper connection
/// is even dialed for them — and live scans are wrapped in a
/// [`RecordingSource`] so their completion populates the cache. Without
/// one, sources are exactly the pre-cache topology: remote sources when
/// wrapper groups are configured, in-process [`ThreadedWrapper`]s
/// otherwise (relation `i` maps to group `i % groups`).
///
/// A single-endpoint group dials a plain [`RemoteWrapper`] — with no peer
/// to fail over to, a death should surface exactly as it always has. A
/// multi-replica group asks its [`ReplicaSet`] for the best live endpoint
/// and scans through a [`FailoverSource`], which survives mid-scan
/// endpoint deaths by resuming on a peer. Cache keys use the *group id*,
/// not the endpoint, so a scan recorded off one replica replays for its
/// peers. Returns the driver, the per-relation cache outcomes, and the
/// replica pins (which endpoint each live scan opened on).
#[allow(clippy::type_complexity)]
fn build_driver(
    workload: &Workload,
    opts: &ServeOpts,
    sets: &[Arc<ReplicaSet>],
    cache: Option<&Arc<SharedCache>>,
) -> Result<(RealTimeDriver, Vec<CacheOutcome>, Vec<(RelId, String)>), SourceError> {
    let catalog: Vec<_> = workload
        .catalog
        .iter()
        .map(|(rel, spec)| (rel, spec.name.clone()))
        .collect();
    let seeds = SeedSplitter::new(workload.config.seed);
    let mut outcomes = Vec::new();
    let mut pins: Vec<(RelId, String)> = Vec::new();
    let driver = RealTimeDriver::try_with_sources(|notify| {
        let mut sources: Vec<BoxSource> = Vec::with_capacity(catalog.len());
        for (rel, name) in &catalog {
            let total = workload.actual_cardinality(*rel);
            let stream = format!("wrapper:{name}");
            let group = (!sets.is_empty()).then(|| &sets[rel.0 as usize % sets.len()]);
            let wrapper_id = group.map_or("local", |g| g.id());
            let key = cache.map(|_| {
                CacheKey::for_scan(wrapper_id, *rel, total, workload.config.seed, &stream)
            });
            if let (Some(cache), Some(key)) = (cache, &key) {
                if let Some(keys) = cache.lookup(key) {
                    let tuples = keys.len() as u64;
                    let bytes = payload_bytes(keys.len());
                    outcomes.push(CacheOutcome {
                        rel: *rel,
                        served: Some((tuples, bytes)),
                    });
                    sources.push(Box::new(ReplaySource::new(*rel, keys)) as BoxSource);
                    continue;
                }
                outcomes.push(CacheOutcome {
                    rel: *rel,
                    served: None,
                });
            }
            let live: BoxSource = match group {
                None => Box::new(ThreadedWrapper::new(
                    *rel,
                    total,
                    workload.delays[rel.0 as usize].clone(),
                    seeds.stream(&stream),
                    workload.config.queue_capacity,
                    notify.clone(),
                )),
                Some(set) => {
                    let open = RemoteOpen {
                        rel: *rel,
                        total,
                        window: workload.config.queue_capacity as u32,
                        seed: workload.config.seed,
                        stream: stream.clone(),
                        delay: workload.delays[rel.0 as usize].clone(),
                        resume_from: 0,
                    };
                    if set.len() == 1 {
                        let addr = set.addr(0);
                        pins.push((*rel, addr.clone()));
                        Box::new(RemoteWrapper::connect(
                            &addr,
                            open,
                            notify.clone(),
                            opts.read_timeout,
                        )?)
                    } else {
                        let source = FailoverSource::connect(
                            Arc::clone(set),
                            open,
                            notify.clone(),
                            FailoverOpts {
                                read_timeout: opts.read_timeout,
                                ..FailoverOpts::default()
                            },
                        )?;
                        pins.push((*rel, source.pinned().to_string()));
                        Box::new(source)
                    }
                }
            };
            let source = match (cache, key) {
                (Some(cache), Some(key)) => {
                    Box::new(RecordingSource::new(live, Arc::clone(cache), key)) as BoxSource
                }
                _ => live,
            };
            sources.push(source);
        }
        Ok(sources)
    })?;
    Ok((driver, outcomes, pins))
}

/// Run `workload` under the named strategy on `driver`, reporting events
/// to `observer`.
fn run_with_strategy<O: EngineObserver>(
    strategy: &str,
    workload: &Workload,
    observer: O,
    driver: RealTimeDriver,
) -> Result<RunMetrics, RunError> {
    fn go<P: Policy, O: EngineObserver>(
        w: &Workload,
        p: P,
        o: O,
        d: RealTimeDriver,
    ) -> Result<RunMetrics, RunError> {
        Engine::with_driver(w, p, o, d).try_run()
    }
    match strategy {
        "seq" => go(workload, SeqPolicy, observer, driver),
        "ma" => go(workload, MaPolicy::default(), observer, driver),
        "scr" => go(workload, ScramblingPolicy::new(), observer, driver),
        // Validated at submission; default cannot be reached with other
        // names.
        _ => go(workload, DsePolicy::new(), observer, driver),
    }
}

/// A `Write` sink that forwards each completed JSON line to the client as
/// a `Trace` frame (or discards it when tracing is off). Write errors are
/// swallowed: losing the trace must not abort the query.
#[derive(Debug)]
struct TraceFrames {
    conn: Option<TcpStream>,
    enabled: bool,
    line: Vec<u8>,
}

impl Write for TraceFrames {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.enabled || self.conn.is_none() {
            return Ok(buf.len());
        }
        for &b in buf {
            if b == b'\n' {
                let line = String::from_utf8_lossy(&self.line).into_owned();
                self.line.clear();
                if let Some(conn) = &mut self.conn {
                    if write_frame(conn, &Frame::Trace { line }).is_err() {
                        self.conn = None; // client gone; stop trying
                    }
                }
            } else {
                self.line.push(b);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Flat JSON rendering of a finished run's metrics (the `Done` payload).
pub fn metrics_json(m: &RunMetrics) -> String {
    let queries: Vec<String> = m
        .query_responses
        .iter()
        .map(|(q, t)| format!("[{q},{}]", t.as_secs_f64()))
        .collect();
    format!(
        "{{\"strategy\":\"{}\",\"seed\":{},\"response_secs\":{},\
         \"output_tuples\":{},\"cpu_busy_secs\":{},\"stall_secs\":{},\
         \"batches\":{},\"plans\":{},\"end_of_qf\":{},\"rate_changes\":{},\
         \"timeouts\":{},\"memory_overflows\":{},\"degradations\":{},\
         \"memory_high_water\":{},\"events\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"cache_bytes_served\":{},\"failovers\":{},\
         \"replica_retries\":{},\"query_responses\":[{}]}}",
        m.strategy,
        m.seed,
        m.response_secs(),
        m.output_tuples,
        m.cpu_busy.as_secs_f64(),
        m.stall_time.as_secs_f64(),
        m.batches,
        m.plans,
        m.end_of_qf,
        m.rate_changes,
        m.timeouts,
        m.memory_overflows,
        m.degradations,
        m.memory_high_water,
        m.events,
        m.cache_hits,
        m.cache_misses,
        m.cache_bytes_served,
        m.failovers,
        m.replica_retries,
        queries.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_is_parseable_and_carries_the_cardinality() {
        let mut m = RunMetrics {
            strategy: "dse",
            seed: 42,
            ..RunMetrics::default()
        };
        m.output_tuples = 90_000;
        let text = metrics_json(&m);
        let v = dqs_exec::json::parse(&text).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("output_tuples").and_then(|v| v.as_u64()), Some(90_000));
        assert_eq!(
            get("strategy").and_then(|v| v.as_str()),
            Some("dse"),
            "{text}"
        );
    }
}
