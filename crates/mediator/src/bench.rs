//! The C10K load generator behind `dqs bench c10k`.
//!
//! An open-loop driver: it opens sessions against a running mediator as
//! fast as the kernel accepts them — arrivals do not wait for
//! completions — and holds every session open until its terminal frame.
//! Against a mediator whose `--backlog` admits them, tens of thousands
//! of sessions are concurrently alive (a handful running, the rest
//! parked in the admission backlog), which is exactly the load shape the
//! event-driven core exists for: each held session costs the server one
//! fd and a state machine, not a thread.
//!
//! The generator is itself built on the reactor — one thread, one
//! [`Poller`], ten thousand non-blocking client state machines — so the
//! measuring side never becomes the bottleneck it is measuring.
//!
//! Reported latency is submit-to-terminal wall time per session, which
//! under a saturated mediator is dominated by queueing delay; p50/p99/
//! p999 therefore characterise the admission queue, and `throughput` the
//! executor pool's drain rate.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dqs_reactor::{Events, Interest, Poller, Token};
use dqs_source::net::{FlushStatus, Frame, FrameDecoder, WriteBuffer};

/// A deliberately tiny workload: two 64-tuple relations and one join,
/// paced at wrapper-like millisecond delays so a session spends its
/// ~200 ms *sleeping on arrivals*, not burning CPU. That is both the
/// honest shape of the paper's workloads (wrapper latency dominates)
/// and what lets an open-loop generator actually pile sessions up: the
/// executors sleep, the core stays free for the accept path, and the
/// backlog — not the CPU — absorbs the load.
pub const TINY_SPEC: &str = r#"{
  "relations": [
    {"name": "a", "cardinality": 64, "delay": {"constant_us": 3000}},
    {"name": "b", "cardinality": 64, "delay": {"constant_us": 3000}}
  ],
  "joins": [{"left": "a", "right": "b", "selectivity": 0.002}],
  "config": {"seed": 7}
}"#;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct C10kOpts {
    /// Mediator address (`host:port`).
    pub addr: String,
    /// Total sessions to open. The mediator's `--backlog` must admit
    /// `sessions - max_concurrent` of them or the overflow is Rejected
    /// (and counted as errored here).
    pub sessions: usize,
    /// Strategy submitted with every query.
    pub strategy: String,
    /// Workload spec submitted with every query.
    pub spec_json: String,
    /// Connections opened per reactor loop iteration (the arrival burst
    /// size).
    pub connect_batch: usize,
    /// Give up (counting unfinished sessions as errored) after this long.
    pub timeout: Duration,
}

impl Default for C10kOpts {
    fn default() -> Self {
        C10kOpts {
            addr: String::new(),
            sessions: 11_500,
            strategy: "dse".into(),
            spec_json: TINY_SPEC.into(),
            connect_batch: 250,
            timeout: Duration::from_secs(600),
        }
    }
}

/// What a bench run observed.
#[derive(Debug, Clone)]
pub struct C10kReport {
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions that reached `Done`.
    pub completed: usize,
    /// Sessions that failed: connect errors, `Rejected`, `Error`, torn
    /// connections, or still unfinished at the deadline.
    pub errored: usize,
    /// Most sessions simultaneously open (submitted, terminal not yet
    /// received).
    pub peak_concurrent: usize,
    /// First connect to last terminal, seconds.
    pub duration_secs: f64,
    /// Completed sessions per second over the whole run.
    pub throughput_per_sec: f64,
    /// Median submit→terminal latency, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Worst completed-session latency, milliseconds.
    pub max_ms: f64,
}

impl C10kReport {
    /// Flat JSON rendering (the `BENCH_c10k.json` payload).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"completed\":{},\"errored\":{},\
             \"peak_concurrent\":{},\"duration_secs\":{:.3},\
             \"throughput_per_sec\":{:.1},\"p50_ms\":{:.2},\
             \"p99_ms\":{:.2},\"p999_ms\":{:.2},\"max_ms\":{:.2}}}",
            self.sessions,
            self.completed,
            self.errored,
            self.peak_concurrent,
            self.duration_secs,
            self.throughput_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms
        )
    }
}

/// One client session's state machine.
struct Client {
    stream: TcpStream,
    dec: FrameDecoder,
    wb: WriteBuffer,
    submitted_at: Instant,
    interest: Interest,
}

/// Sort-free percentile on a sorted slice: the value at or above
/// quantile `q` of the distribution.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64) * q).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Drive `opts.sessions` sessions against the mediator at `opts.addr`
/// and measure the distribution of their completion times.
pub fn run_c10k(opts: &C10kOpts) -> io::Result<C10kReport> {
    let mut poller = Poller::new()?;
    let mut clients: Vec<Option<Client>> = Vec::with_capacity(opts.sessions);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(opts.sessions);
    let mut errored = 0usize;
    let mut open = 0usize;
    let mut peak = 0usize;
    let mut events = Events::new();
    let started = Instant::now();
    let submit = Frame::Submit {
        strategy: opts.strategy.clone(),
        trace: false,
        no_cache: false,
        seed: None,
        spec_json: opts.spec_json.clone(),
    };

    // Terminal handling is shared between the event loop and the final
    // reap, so keep it as a closure-free helper.
    enum Outcome {
        Pending,
        Done,
        Failed,
    }
    fn pump(client: &mut Client) -> Outcome {
        // Flush any unwritten Submit bytes, then drain replies.
        if client.wb.flush(&mut client.stream).is_err() {
            return Outcome::Failed;
        }
        let mut buf = [0u8; 4096];
        let mut eof = false;
        loop {
            match client.stream.read(&mut buf) {
                Ok(0) => {
                    // The server sends the terminal and closes; the Done
                    // may already be buffered, so parse before ruling.
                    eof = true;
                    break;
                }
                Ok(n) => client.dec.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Outcome::Failed,
            }
        }
        loop {
            match client.dec.next_frame() {
                Ok(Some(Frame::Done { .. })) => return Outcome::Done,
                Ok(Some(Frame::Rejected { .. } | Frame::Error { .. })) => return Outcome::Failed,
                Ok(Some(_)) => {} // Queued / Accepted / Trace: progress
                Ok(None) if eof => return Outcome::Failed, // EOF before terminal
                Ok(None) => return Outcome::Pending,
                Err(_) => return Outcome::Failed,
            }
        }
    }

    let mut to_open: VecDeque<usize> = (0..opts.sessions).collect();
    let finished =
        |latencies: &Vec<f64>, errored: usize| latencies.len() + errored >= opts.sessions;
    while !finished(&latencies_ms, errored) && started.elapsed() < opts.timeout {
        // Arrival burst: open the next batch regardless of completions.
        for _ in 0..opts.connect_batch {
            let Some(idx) = to_open.pop_front() else {
                break;
            };
            let stream = match TcpStream::connect(&opts.addr) {
                Ok(s) => s,
                Err(_) => {
                    errored += 1;
                    clients.push(None);
                    continue;
                }
            };
            stream.set_nodelay(true).ok();
            if stream.set_nonblocking(true).is_err() {
                errored += 1;
                clients.push(None);
                continue;
            }
            let mut client = Client {
                stream,
                dec: FrameDecoder::new(),
                wb: WriteBuffer::new(),
                submitted_at: Instant::now(),
                interest: Interest::READABLE,
            };
            client.wb.push(&submit);
            let blocked = matches!(
                client.wb.flush(&mut client.stream),
                Ok(FlushStatus::Blocked)
            );
            client.interest = if blocked {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            {
                use std::os::fd::AsRawFd;
                if poller
                    .register(
                        client.stream.as_raw_fd(),
                        Token(idx as u64),
                        client.interest,
                    )
                    .is_err()
                {
                    errored += 1;
                    clients.push(None);
                    continue;
                }
            }
            debug_assert_eq!(clients.len(), idx);
            clients.push(Some(client));
            open += 1;
            peak = peak.max(open);
        }
        let timeout = if to_open.is_empty() {
            Duration::from_millis(100)
        } else {
            Duration::from_millis(1)
        };
        poller.wait(&mut events, Some(timeout))?;
        for ev in events.iter().copied() {
            let idx = ev.token.0 as usize;
            let Some(slot) = clients.get_mut(idx) else {
                continue;
            };
            let Some(client) = slot.as_mut() else {
                continue;
            };
            let outcome = pump(client);
            match outcome {
                Outcome::Pending => {
                    // Writable interest only while Submit bytes remain.
                    let want = if client.wb.is_empty() {
                        Interest::READABLE
                    } else {
                        Interest::BOTH
                    };
                    if want != client.interest {
                        client.interest = want;
                        use std::os::fd::AsRawFd;
                        poller
                            .modify(client.stream.as_raw_fd(), Token(idx as u64), want)
                            .ok();
                    }
                }
                Outcome::Done | Outcome::Failed => {
                    {
                        use std::os::fd::AsRawFd;
                        poller.deregister(client.stream.as_raw_fd()).ok();
                    }
                    if matches!(outcome, Outcome::Done) {
                        latencies_ms.push(client.submitted_at.elapsed().as_secs_f64() * 1e3);
                    } else {
                        errored += 1;
                    }
                    *slot = None;
                    open -= 1;
                }
            }
        }
    }
    // Deadline hit: everything still open failed.
    errored += open;

    let duration_secs = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(C10kReport {
        sessions: opts.sessions,
        completed: latencies_ms.len(),
        errored,
        peak_concurrent: peak,
        duration_secs,
        throughput_per_sec: latencies_ms.len() as f64 / duration_secs.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        p999_ms: percentile(&latencies_ms, 0.999),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let ms: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile(&ms, 0.50), 500.0);
        assert_eq!(percentile(&ms, 0.99), 990.0);
        assert_eq!(percentile(&ms, 0.999), 999.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.999), 7.0);
    }

    #[test]
    fn report_json_is_parseable() {
        let r = C10kReport {
            sessions: 100,
            completed: 99,
            errored: 1,
            peak_concurrent: 98,
            duration_secs: 1.5,
            throughput_per_sec: 66.0,
            p50_ms: 10.0,
            p99_ms: 50.0,
            p999_ms: 70.0,
            max_ms: 71.5,
        };
        let v = dqs_exec::json::parse(&r.to_json()).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n.as_str() == k).map(|(_, v)| v);
        assert_eq!(get("peak_concurrent").and_then(|v| v.as_u64()), Some(98));
        assert!(get("p99_ms").is_some());
    }
}
