//! The C10K load generator behind `dqs bench c10k`.
//!
//! Since the workload subsystem landed, this is a thin preset over
//! [`mod@dqs_workload::replay`]: a flood trace — every arrival due at t = 0,
//! one tiny spec — fired open-loop at the mediator. The reactor loop,
//! session state machines, and latency accounting live in
//! `dqs-workload`; this module keeps the classic options, report shape,
//! and `BENCH_c10k.json` format byte-compatible with the original
//! generator.
//!
//! Reported latency is submit-to-terminal wall time per session, which
//! under a saturated mediator is dominated by queueing delay; p50/p99/
//! p999 therefore characterise the admission queue, and `throughput` the
//! executor pool's drain rate.

use std::io;
use std::time::Duration;

use dqs_workload::{replay, ReplayOpts, Trace};

/// A deliberately tiny workload: two 64-tuple relations and one join,
/// paced at wrapper-like millisecond delays so a session spends its
/// ~200 ms *sleeping on arrivals*, not burning CPU. That is both the
/// honest shape of the paper's workloads (wrapper latency dominates)
/// and what lets an open-loop generator actually pile sessions up: the
/// executors sleep, the core stays free for the accept path, and the
/// backlog — not the CPU — absorbs the load.
pub const TINY_SPEC: &str = r#"{
  "relations": [
    {"name": "a", "cardinality": 64, "delay": {"constant_us": 3000}},
    {"name": "b", "cardinality": 64, "delay": {"constant_us": 3000}}
  ],
  "joins": [{"left": "a", "right": "b", "selectivity": 0.002}],
  "config": {"seed": 7}
}"#;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct C10kOpts {
    /// Mediator address (`host:port`).
    pub addr: String,
    /// Total sessions to open. The mediator's `--backlog` must admit
    /// `sessions - max_concurrent` of them or the overflow is Rejected
    /// (and counted as errored here).
    pub sessions: usize,
    /// Strategy submitted with every query.
    pub strategy: String,
    /// Workload spec submitted with every query.
    pub spec_json: String,
    /// Connections opened per reactor loop iteration (the arrival burst
    /// size).
    pub connect_batch: usize,
    /// Give up (counting unfinished sessions as errored) after this long.
    pub timeout: Duration,
}

impl Default for C10kOpts {
    fn default() -> Self {
        C10kOpts {
            addr: String::new(),
            sessions: 11_500,
            strategy: "dse".into(),
            spec_json: TINY_SPEC.into(),
            connect_batch: 250,
            timeout: Duration::from_secs(600),
        }
    }
}

/// What a bench run observed.
#[derive(Debug, Clone)]
pub struct C10kReport {
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions that reached `Done`.
    pub completed: usize,
    /// Sessions that failed: connect errors, `Rejected`, `Error`, torn
    /// connections, or still unfinished at the deadline.
    pub errored: usize,
    /// Most sessions simultaneously open (submitted, terminal not yet
    /// received).
    pub peak_concurrent: usize,
    /// First connect to last terminal, seconds.
    pub duration_secs: f64,
    /// Completed sessions per second over the whole run.
    pub throughput_per_sec: f64,
    /// Median submit→terminal latency, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Worst completed-session latency, milliseconds.
    pub max_ms: f64,
}

impl C10kReport {
    /// Flat JSON rendering (the `BENCH_c10k.json` payload).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"completed\":{},\"errored\":{},\
             \"peak_concurrent\":{},\"duration_secs\":{:.3},\
             \"throughput_per_sec\":{:.1},\"p50_ms\":{:.2},\
             \"p99_ms\":{:.2},\"p999_ms\":{:.2},\"max_ms\":{:.2}}}",
            self.sessions,
            self.completed,
            self.errored,
            self.peak_concurrent,
            self.duration_secs,
            self.throughput_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms
        )
    }
}

/// Drive `opts.sessions` sessions against the mediator at `opts.addr`
/// and measure the distribution of their completion times.
pub fn run_c10k(opts: &C10kOpts) -> io::Result<C10kReport> {
    let trace = Trace::flood(opts.sessions, &opts.spec_json, &opts.strategy);
    let report = replay(
        &trace,
        &ReplayOpts {
            addr: opts.addr.clone(),
            connect_batch: opts.connect_batch,
            timeout: opts.timeout,
        },
    )?;
    Ok(C10kReport {
        sessions: opts.sessions,
        completed: report.completed,
        // The classic report folded Rejected into errored (a c10k run is
        // judged on every session completing).
        errored: report.errored + report.rejected,
        peak_concurrent: report.peak_concurrent,
        duration_secs: report.duration_secs,
        throughput_per_sec: report.throughput_per_sec,
        p50_ms: report.total.p50_ms,
        p99_ms: report.total.p99_ms,
        p999_ms: report.total.p999_ms,
        max_ms: report.total.max_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_parseable() {
        let r = C10kReport {
            sessions: 100,
            completed: 99,
            errored: 1,
            peak_concurrent: 98,
            duration_secs: 1.5,
            throughput_per_sec: 66.0,
            p50_ms: 10.0,
            p99_ms: 50.0,
            p999_ms: 70.0,
            max_ms: 71.5,
        };
        let v = dqs_exec::json::parse(&r.to_json()).expect("valid JSON");
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n.as_str() == k).map(|(_, v)| v);
        assert_eq!(get("peak_concurrent").and_then(|v| v.as_u64()), Some(98));
        assert!(get("p99_ms").is_some());
    }
}
