//! The standalone wrapper-server: the remote half of the window protocol.
//!
//! A [`WrapperServer`] listens for mediator connections. Each connection
//! carries one or more `Open` frames; every `Open` starts a producer
//! thread that serves that relation — drawing inter-tuple gaps from the
//! requested delay model with the requested seeded stream (so a remote
//! run delivers byte-for-byte the tuples and pacing an in-process
//! `ThreadedWrapper` would), sleeping them for real, and shipping each
//! tuple as a `TupleBatch` frame while respecting the flow-control
//! window: the producer holds at most `window` unacknowledged tuples and
//! waits for `WindowGrant` credits beyond that, which is the paper's
//! §2.1 suspension performed by the *source* side of the wire.
//!
//! An `Open` may carry a non-zero `resume_from`: the producer then serves
//! indices `resume_from..total`. Tuple payloads are pure functions of
//! `(rel, index, seed)`, so a mediator failing over from a dead replica
//! resumes the stream bit-identically on this one.
//!
//! The server keeps a registry of live connections so tests (and the
//! mediator-kill scenario) can sever every peer at once with
//! [`WrapperServer::drop_connections`], and [`WrapperServer::shutdown`]
//! joins every handler and producer thread — no process kill, no leaked
//! listeners.
//!
//! ## Change tracking
//!
//! The server also keeps a per-relation change registry for the
//! mediator's freshness subsystem. Every relation it has served carries
//! a monotonic `version` counter, bumped by the mutation hooks
//! [`WrapperServer::mutate_append`] (insert-only growth: the advertised
//! total grows by `n`) and [`WrapperServer::mutate_rewrite`] (in-place
//! change: the total is unchanged but any cached prefix is now suspect).
//! A `StatRequest` frame answers with one `RelStat` per registered
//! relation — `(version, total, rewrite_version)` — which is everything
//! the mediator's refresh planner needs to choose between a tail-delta
//! re-open at `resume_from = cached_len` and a full re-scan. The
//! `--churn` test knob (see [`ChurnOpts`]) drives `mutate_append` from a
//! background thread so smokes and benches can exercise refresh against
//! a live write stream.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dqs_relop::{synth_key, RelId};
use dqs_sim::SeedSplitter;
use dqs_source::net::{read_frame, FlushStatus, Frame, RelStat, WriteBuffer};
use dqs_source::DelayModel;

/// Sleep in slices no longer than this, so a stopping server never waits
/// out a long modelled gap.
const SLEEP_SLICE: Duration = Duration::from_millis(50);

/// Per-connection flow-control state: available credits per opened
/// relation, plus a poison flag the reader raises when the socket dies.
#[derive(Debug, Default)]
struct Credits {
    by_rel: HashMap<RelId, u64>,
    dead: bool,
}

/// Per-relation change-tracking state. The wrapper is otherwise
/// stateless about sizes (the mediator's `Open` names the total), so the
/// base cardinality is *learned* from the largest fresh total a scan has
/// asked for, and appends grow on top of it.
#[derive(Debug, Default, Clone, Copy)]
struct RelState {
    /// Monotonic change counter; bumped by every mutation.
    version: u64,
    /// Base cardinality learned from `Open` totals (net of appends).
    base: u64,
    /// Tuples appended by mutation hooks since the base was learned.
    extra: u64,
    /// `version` at the last non-append mutation (0 = insert-only).
    rewrite_version: u64,
}

impl RelState {
    fn total(&self) -> u64 {
        self.base + self.extra
    }

    fn stat(&self, rel: RelId) -> RelStat {
        RelStat {
            rel,
            version: self.version,
            total: self.total(),
            rewrite_version: self.rewrite_version,
        }
    }
}

/// The shared change registry: every relation this server has served.
type ChangeRegistry = Arc<Mutex<HashMap<RelId, RelState>>>;

/// Configuration of the `--churn` test knob: a background write stream
/// appending tuples to every *registered* relation on an interval, so
/// refresh machinery can be exercised without an external writer. A
/// round in which nothing is registered yet is skipped, not consumed —
/// `rounds` counts effective mutations.
#[derive(Debug, Clone)]
pub struct ChurnOpts {
    /// Gap between mutation rounds.
    pub interval: Duration,
    /// Tuples appended to each registered relation per round.
    pub tuples: u64,
    /// Stop after this many effective rounds; 0 = churn forever.
    pub rounds: u64,
}

/// The connection's shared outbound channel: producers stage whole
/// frames into the incremental [`WriteBuffer`] and flush through it, so
/// a short write (or a `WouldBlock` under a send timeout) retains the
/// remainder and the next flush resumes mid-frame instead of tearing it.
#[derive(Debug)]
struct OutChannel {
    stream: TcpStream,
    wb: WriteBuffer,
}

impl OutChannel {
    /// Stage `frame` and push the buffer at the socket. Returns `false`
    /// once the peer is unreachable; a blocked socket is not an error —
    /// the staged bytes ride along with the next send.
    fn send(&mut self, frame: &Frame) -> bool {
        self.wb.push(frame);
        matches!(
            self.wb.flush(&mut self.stream),
            Ok(FlushStatus::Flushed | FlushStatus::Blocked)
        )
    }
}

/// A serving wrapper process (minus the process): listener + producers.
#[derive(Debug)]
pub struct WrapperServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    registry: ChangeRegistry,
    accept_thread: Option<JoinHandle<()>>,
    churn_thread: Option<JoinHandle<()>>,
}

impl WrapperServer {
    /// Bind and start accepting. `addr` may use port 0 for an ephemeral
    /// port; [`WrapperServer::local_addr`] reports what was bound.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<WrapperServer> {
        Self::bind_with(addr, Duration::ZERO, None)
    }

    /// Like [`WrapperServer::bind`], but every tuple costs an extra
    /// `per_tuple` on top of the modelled gap — an artificial handicap for
    /// exercising rate-aware replica selection against a deliberately slow
    /// endpoint.
    pub fn bind_throttled(
        addr: impl ToSocketAddrs,
        per_tuple: Duration,
    ) -> io::Result<WrapperServer> {
        Self::bind_with(addr, per_tuple, None)
    }

    /// Full-control bind: per-tuple throttle plus the optional `--churn`
    /// background write stream.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        per_tuple: Duration,
        churn: Option<ChurnOpts>,
    ) -> io::Result<WrapperServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let registry: ChangeRegistry = Arc::new(Mutex::new(HashMap::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_handlers = Arc::clone(&handlers);
        let accept_registry = Arc::clone(&registry);
        let accept_thread = thread::spawn(move || {
            let mut next_id: u64 = 0;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(conn) = conn else { continue };
                conn.set_nodelay(true).ok();
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = conn.try_clone() {
                    accept_conns.lock().unwrap().insert(id, clone);
                }
                let conn_stop = Arc::clone(&accept_stop);
                let conn_registry = Arc::clone(&accept_conns);
                let conn_changes = Arc::clone(&accept_registry);
                let handle = thread::spawn(move || {
                    serve_connection(conn, conn_stop, per_tuple, conn_changes);
                    // Self-removal keeps the registry bounded across many
                    // short-lived connections (e.g. liveness probes).
                    conn_registry.lock().unwrap().remove(&id);
                });
                let mut hs = accept_handlers.lock().unwrap();
                hs.retain(|h| !h.is_finished());
                hs.push(handle);
            }
        });
        let churn_thread = churn.map(|opts| {
            let churn_stop = Arc::clone(&stop);
            let churn_registry = Arc::clone(&registry);
            thread::spawn(move || churn_loop(opts, churn_stop, churn_registry))
        });
        Ok(WrapperServer {
            addr,
            stop,
            conns,
            handlers,
            registry,
            accept_thread: Some(accept_thread),
            churn_thread,
        })
    }

    /// Append `n` tuples to `rel`: the advertised total grows, the
    /// version bumps, and — because tuple payloads are a pure function of
    /// `(rel, index, seed)` — every previously served prefix stays valid,
    /// so a cached scan refreshes by re-opening at its cached length.
    /// Returns `false` for a relation this server has never served (there
    /// is nothing to append to yet).
    pub fn mutate_append(&self, rel: RelId, n: u64) -> bool {
        let mut reg = self.registry.lock().unwrap();
        match reg.get_mut(&rel) {
            Some(s) => {
                s.version += 1;
                s.extra += n;
                true
            }
            None => false,
        }
    }

    /// Rewrite `rel` in place: the total is unchanged but the version
    /// bumps and `rewrite_version` advances to it, telling the mediator
    /// any cached prefix is suspect and only a full re-scan refreshes it.
    /// Returns `false` for an unregistered relation.
    pub fn mutate_rewrite(&self, rel: RelId) -> bool {
        let mut reg = self.registry.lock().unwrap();
        match reg.get_mut(&rel) {
            Some(s) => {
                s.version += 1;
                s.rewrite_version = s.version;
                true
            }
            None => false,
        }
    }

    /// Current change-tracking state, one row per registered relation in
    /// ascending relation order (what a `StatRequest { rel: None }` gets).
    pub fn rel_stats(&self) -> Vec<RelStat> {
        let reg = self.registry.lock().unwrap();
        let mut stats: Vec<RelStat> = reg.iter().map(|(r, s)| s.stat(*r)).collect();
        stats.sort_by_key(|s| s.rel.0);
        stats
    }

    /// The address actually bound (resolves `--port 0`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Sever every live mediator connection — the "kill the wrapper
    /// mid-query" lever: peers observe an immediate disconnect, not a
    /// silence.
    pub fn drop_connections(&self) {
        let mut conns = self.conns.lock().unwrap();
        for (_, c) in conns.drain() {
            c.shutdown(Shutdown::Both).ok();
        }
    }

    /// Stop accepting, sever connections, and join every thread the
    /// server spawned (accept loop, connection handlers, producers, the
    /// churn writer).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect to unblock the accept loop.
        TcpStream::connect(self.addr).ok();
        self.drop_connections();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
        if let Some(t) = self.churn_thread.take() {
            t.join().ok();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handlers {
            h.join().ok();
        }
    }

    /// Park the calling thread while the server runs (the `dqs wrapper`
    /// foreground loop). Returns only if the accept thread dies.
    pub fn run_forever(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// The `--churn` write stream: every `interval`, append `tuples` to each
/// registered relation. A round before any relation is registered is
/// skipped without consuming the round budget, so a one-shot churn
/// (`rounds: 1`) always lands *after* the first scan no matter how the
/// processes were started.
fn churn_loop(opts: ChurnOpts, stop: Arc<AtomicBool>, registry: ChangeRegistry) {
    let mut done: u64 = 0;
    loop {
        let mut left = opts.interval;
        while !left.is_zero() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let slice = left.min(SLEEP_SLICE);
            thread::sleep(slice);
            left -= slice;
        }
        let mut mutated = false;
        {
            let mut reg = registry.lock().unwrap();
            for s in reg.values_mut() {
                s.version += 1;
                s.extra += opts.tuples;
                mutated = true;
            }
        }
        if mutated {
            done += 1;
            if opts.rounds != 0 && done >= opts.rounds {
                return;
            }
        }
    }
}

/// One mediator connection: route `Open`s to producers, `WindowGrant`s
/// to their credit pools and `StatRequest`s to the change registry until
/// the peer goes away. Joins its producers before returning, so a
/// finished handler means no stray threads.
fn serve_connection(
    conn: TcpStream,
    stop: Arc<AtomicBool>,
    per_tuple: Duration,
    registry: ChangeRegistry,
) {
    let credits = Arc::new((Mutex::new(Credits::default()), Condvar::new()));
    let writer = Arc::new(Mutex::new(OutChannel {
        stream: match conn.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        },
        wb: WriteBuffer::new(),
    }));
    let mut producers: Vec<JoinHandle<()>> = Vec::new();
    let mut reader = conn;
    // A read that yields a clean close, reset, or garbage means this
    // connection is done; fall through to poison the credit pool so
    // producers exit.
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        match frame {
            Frame::Open {
                rel,
                total,
                window,
                seed,
                stream,
                delay,
                resume_from,
            } => {
                {
                    // Register the relation and learn its base size. The
                    // open total already includes any appends the peer
                    // knew about, so the base is the total net of them —
                    // never shrinking, since concurrent scans may open at
                    // older (smaller) totals.
                    let mut reg = registry.lock().unwrap();
                    let s = reg.entry(rel).or_default();
                    s.base = s.base.max(total.saturating_sub(s.extra));
                }
                {
                    let (lock, _) = &*credits;
                    lock.lock().unwrap().by_rel.insert(rel, u64::from(window));
                }
                let producer_credits = Arc::clone(&credits);
                let producer_writer = Arc::clone(&writer);
                let producer_stop = Arc::clone(&stop);
                producers.push(thread::spawn(move || {
                    produce(
                        rel,
                        total,
                        resume_from,
                        seed,
                        &stream,
                        delay,
                        per_tuple,
                        producer_credits,
                        producer_writer,
                        producer_stop,
                    )
                }));
            }
            Frame::WindowGrant { rel, credits: c } => {
                let (lock, cond) = &*credits;
                let mut pool = lock.lock().unwrap();
                *pool.by_rel.entry(rel).or_insert(0) += u64::from(c);
                cond.notify_all();
            }
            Frame::StatRequest { rel } => {
                let stats = {
                    let reg = registry.lock().unwrap();
                    let mut stats: Vec<RelStat> = reg
                        .iter()
                        .filter(|(r, _)| rel.map_or(true, |want| **r == want))
                        .map(|(r, s)| s.stat(*r))
                        .collect();
                    stats.sort_by_key(|s| s.rel.0);
                    stats
                };
                if !writer.lock().unwrap().send(&Frame::StatReply { stats }) {
                    break;
                }
            }
            // Anything else is a protocol error from the peer; drop it.
            _ => break,
        }
    }
    // Poison: wake every producer so none waits forever on credits.
    reader.shutdown(Shutdown::Both).ok();
    let (lock, cond) = &*credits;
    lock.lock().unwrap().dead = true;
    cond.notify_all();
    for p in producers {
        p.join().ok();
    }
}

/// Sleep `gap`, a slice at a time, bailing out early when the server
/// stops or the connection's credit pool is poisoned.
fn interruptible_sleep(
    gap: Duration,
    stop: &AtomicBool,
    credits: &(Mutex<Credits>, Condvar),
) -> bool {
    let mut left = gap;
    while !left.is_zero() {
        if stop.load(Ordering::SeqCst) || credits.0.lock().unwrap().dead {
            return false;
        }
        let slice = left.min(SLEEP_SLICE);
        thread::sleep(slice);
        left -= slice;
    }
    true
}

/// Serve one relation from `resume_from`: sleep the modelled gap, wait
/// for window credit, ship the tuple. Exits when done, when the
/// connection dies, or when the server stops.
#[allow(clippy::too_many_arguments)]
fn produce(
    rel: RelId,
    total: u64,
    resume_from: u64,
    seed: u64,
    stream: &str,
    delay: DelayModel,
    per_tuple: Duration,
    credits: Arc<(Mutex<Credits>, Condvar)>,
    writer: Arc<Mutex<OutChannel>>,
    stop: Arc<AtomicBool>,
) {
    let mut rng = SeedSplitter::new(seed).stream(stream);
    for i in resume_from..total {
        let gap = Duration::from_nanos(delay.gap(i, &mut rng).as_nanos()) + per_tuple;
        if !interruptible_sleep(gap, &stop, &credits) {
            return;
        }
        // Wait for a window credit (the remote suspension).
        {
            let (lock, cond) = &*credits;
            let mut pool = lock.lock().unwrap();
            loop {
                if pool.dead || stop.load(Ordering::SeqCst) {
                    return;
                }
                let available = pool.by_rel.get(&rel).copied().unwrap_or(0);
                if available > 0 {
                    *pool.by_rel.get_mut(&rel).unwrap() = available - 1;
                    break;
                }
                let (p, _) = cond.wait_timeout(pool, Duration::from_millis(100)).unwrap();
                pool = p;
            }
        }
        let batch = Frame::TupleBatch {
            rel,
            keys: vec![synth_key(rel, i)],
        };
        if !writer.lock().unwrap().send(&batch) {
            return; // peer gone; the mediator sees the disconnect
        }
    }
    writer.lock().unwrap().send(&Frame::Eof { rel });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_sim::SimDuration;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    use dqs_source::{Notice, RemoteOpen, RemoteWrapper, TupleSource};

    fn open(rel: u16, total: u64, window: u32) -> RemoteOpen {
        RemoteOpen {
            rel: RelId(rel),
            total,
            window,
            seed: 42,
            stream: format!("wrapper:r{rel}"),
            delay: DelayModel::Constant {
                w: SimDuration::from_nanos(100),
            },
            resume_from: 0,
        }
    }

    /// Drain one RemoteWrapper to completion, returning its keys.
    fn drain(mut w: RemoteWrapper, nrx: std::sync::mpsc::Receiver<Notice>) -> Vec<u64> {
        let mut keys = Vec::new();
        while !w.exhausted() {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => keys.push(w.emit().key),
                other => panic!("unexpected notice: {other:?}"),
            }
        }
        keys
    }

    #[test]
    fn serves_a_relation_end_to_end_with_the_windowed_protocol() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        // Window of 4 forces many grant round-trips for 50 tuples.
        let w = RemoteWrapper::connect(
            server.local_addr(),
            open(5, 50, 4),
            ntx,
            Duration::from_secs(10),
        )
        .unwrap();
        let mut w = w;
        w.start();
        let keys = drain(w, nrx);
        let expected: Vec<u64> = (0..50).map(|i| synth_key(RelId(5), i)).collect();
        assert_eq!(keys, expected);
        server.shutdown();
    }

    #[test]
    fn serves_two_relations_on_one_connection_worth_of_server() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let mut handles = Vec::new();
        for rel in [1u16, 2u16] {
            let addr = server.local_addr();
            handles.push(thread::spawn(move || {
                let (ntx, nrx) = channel();
                let mut w =
                    RemoteWrapper::connect(addr, open(rel, 30, 8), ntx, Duration::from_secs(10))
                        .unwrap();
                w.start();
                drain(w, nrx)
            }));
        }
        let keys: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, rel) in [1u16, 2u16].iter().enumerate() {
            let expected: Vec<u64> = (0..30).map(|j| synth_key(RelId(*rel), j)).collect();
            assert_eq!(keys[i], expected);
        }
        server.shutdown();
    }

    #[test]
    fn honors_resume_from_serving_only_the_remainder() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        let mut spec = open(6, 40, 8);
        spec.resume_from = 25;
        let mut w = RemoteWrapper::connect(server.local_addr(), spec, ntx, Duration::from_secs(10))
            .unwrap();
        assert_eq!(w.produced(), 25, "a resumed source starts part-done");
        w.start();
        let keys = drain(w, nrx);
        let expected: Vec<u64> = (25..40).map(|i| synth_key(RelId(6), i)).collect();
        assert_eq!(keys, expected, "only the undelivered suffix is served");
        server.shutdown();
    }

    #[test]
    fn dropping_connections_faults_the_client_side() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        // Slow delivery so the kill lands mid-stream.
        let mut spec = open(7, 10_000, 16);
        spec.delay = DelayModel::Constant {
            w: SimDuration::from_micros(500),
        };
        let mut w = RemoteWrapper::connect(server.local_addr(), spec, ntx, Duration::from_secs(10))
            .unwrap();
        w.start();
        // Take a few tuples, then sever.
        let mut got = 0;
        while got < 3 {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => {
                    w.emit();
                    got += 1;
                }
                other => panic!("unexpected notice: {other:?}"),
            }
        }
        server.drop_connections();
        loop {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => {
                    w.emit();
                }
                Notice::Fault { error, .. } => {
                    assert_eq!(error.kind(), "disconnected", "{error}");
                    break;
                }
                other => panic!("unexpected notice: {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn stat_request_reports_versions_and_totals() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        // Serve rel 8 end to end so it registers with base 20.
        let (ntx, nrx) = channel();
        let mut w = RemoteWrapper::connect(
            server.local_addr(),
            open(8, 20, 8),
            ntx,
            Duration::from_secs(10),
        )
        .unwrap();
        w.start();
        drain(w, nrx);
        assert!(
            !server.mutate_append(RelId(99), 1),
            "never-served relation refused"
        );
        assert!(server.mutate_append(RelId(8), 5));
        assert!(server.mutate_append(RelId(8), 2));
        // Raw stat round-trip over TCP.
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        dqs_source::write_frame(&mut conn, &Frame::StatRequest { rel: None }).unwrap();
        match read_frame(&mut conn).unwrap().unwrap() {
            Frame::StatReply { stats } => assert_eq!(
                stats,
                vec![RelStat {
                    rel: RelId(8),
                    version: 2,
                    total: 27,
                    rewrite_version: 0,
                }]
            ),
            other => panic!("expected StatReply, got {other:?}"),
        }
        // A filtered request for an unknown relation is an empty reply.
        dqs_source::write_frame(
            &mut conn,
            &Frame::StatRequest {
                rel: Some(RelId(3)),
            },
        )
        .unwrap();
        assert_eq!(
            read_frame(&mut conn).unwrap().unwrap(),
            Frame::StatReply { stats: vec![] }
        );
        // A rewrite bumps both counters; the total is unchanged.
        assert!(server.mutate_rewrite(RelId(8)));
        assert_eq!(
            server.rel_stats(),
            vec![RelStat {
                rel: RelId(8),
                version: 3,
                total: 27,
                rewrite_version: 3,
            }]
        );
        // An Open at the stat total must not inflate the learned base.
        let (ntx, nrx) = channel();
        let mut w = RemoteWrapper::connect(
            server.local_addr(),
            open(8, 27, 8),
            ntx,
            Duration::from_secs(10),
        )
        .unwrap();
        w.start();
        drain(w, nrx);
        assert_eq!(server.rel_stats()[0].total, 27);
        server.shutdown();
    }

    #[test]
    fn churn_appends_only_to_registered_relations_and_honors_rounds() {
        let server = WrapperServer::bind_with(
            "127.0.0.1:0",
            Duration::ZERO,
            Some(ChurnOpts {
                interval: Duration::from_millis(30),
                tuples: 3,
                rounds: 2,
            }),
        )
        .unwrap();
        // Nothing registered yet: rounds must be skipped, not consumed.
        thread::sleep(Duration::from_millis(120));
        assert!(server.rel_stats().is_empty());
        let (ntx, nrx) = channel();
        let mut w = RemoteWrapper::connect(
            server.local_addr(),
            open(2, 10, 8),
            ntx,
            Duration::from_secs(10),
        )
        .unwrap();
        w.start();
        drain(w, nrx);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = server.rel_stats();
            if stats.first().is_some_and(|s| s.version >= 2) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "churn rounds never landed: {stats:?}"
            );
            thread::sleep(Duration::from_millis(10));
        }
        // The round budget is spent: no further mutations.
        thread::sleep(Duration::from_millis(150));
        let s = server.rel_stats()[0];
        assert_eq!(
            (s.version, s.total, s.rewrite_version),
            (2, 16, 0),
            "exactly two rounds of 3 appended tuples"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_interrupts_long_modelled_gaps_promptly() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, _nrx) = channel();
        // A gap far longer than the test's patience: shutdown must not
        // wait it out.
        let mut spec = open(3, 10, 4);
        spec.delay = DelayModel::Constant {
            w: SimDuration::from_secs(60),
        };
        let mut w = RemoteWrapper::connect(server.local_addr(), spec, ntx, Duration::from_secs(10))
            .unwrap();
        w.start();
        let begun = std::time::Instant::now();
        server.shutdown();
        assert!(
            begun.elapsed() < Duration::from_secs(5),
            "shutdown joined producers without sleeping out the gap: {:?}",
            begun.elapsed()
        );
    }
}
