//! The standalone wrapper-server: the remote half of the window protocol.
//!
//! A [`WrapperServer`] listens for mediator connections. Each connection
//! carries one or more `Open` frames; every `Open` starts a producer
//! thread that serves that relation — drawing inter-tuple gaps from the
//! requested delay model with the requested seeded stream (so a remote
//! run delivers byte-for-byte the tuples and pacing an in-process
//! `ThreadedWrapper` would), sleeping them for real, and shipping each
//! tuple as a `TupleBatch` frame while respecting the flow-control
//! window: the producer holds at most `window` unacknowledged tuples and
//! waits for `WindowGrant` credits beyond that, which is the paper's
//! §2.1 suspension performed by the *source* side of the wire.
//!
//! An `Open` may carry a non-zero `resume_from`: the producer then serves
//! indices `resume_from..total`. Tuple payloads are pure functions of
//! `(rel, index, seed)`, so a mediator failing over from a dead replica
//! resumes the stream bit-identically on this one.
//!
//! The server keeps a registry of live connections so tests (and the
//! mediator-kill scenario) can sever every peer at once with
//! [`WrapperServer::drop_connections`], and [`WrapperServer::shutdown`]
//! joins every handler and producer thread — no process kill, no leaked
//! listeners.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dqs_relop::{synth_key, RelId};
use dqs_sim::SeedSplitter;
use dqs_source::net::{read_frame, FlushStatus, Frame, WriteBuffer};
use dqs_source::DelayModel;

/// Sleep in slices no longer than this, so a stopping server never waits
/// out a long modelled gap.
const SLEEP_SLICE: Duration = Duration::from_millis(50);

/// Per-connection flow-control state: available credits per opened
/// relation, plus a poison flag the reader raises when the socket dies.
#[derive(Debug, Default)]
struct Credits {
    by_rel: HashMap<RelId, u64>,
    dead: bool,
}

/// The connection's shared outbound channel: producers stage whole
/// frames into the incremental [`WriteBuffer`] and flush through it, so
/// a short write (or a `WouldBlock` under a send timeout) retains the
/// remainder and the next flush resumes mid-frame instead of tearing it.
#[derive(Debug)]
struct OutChannel {
    stream: TcpStream,
    wb: WriteBuffer,
}

impl OutChannel {
    /// Stage `frame` and push the buffer at the socket. Returns `false`
    /// once the peer is unreachable; a blocked socket is not an error —
    /// the staged bytes ride along with the next send.
    fn send(&mut self, frame: &Frame) -> bool {
        self.wb.push(frame);
        matches!(
            self.wb.flush(&mut self.stream),
            Ok(FlushStatus::Flushed | FlushStatus::Blocked)
        )
    }
}

/// A serving wrapper process (minus the process): listener + producers.
#[derive(Debug)]
pub struct WrapperServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WrapperServer {
    /// Bind and start accepting. `addr` may use port 0 for an ephemeral
    /// port; [`WrapperServer::local_addr`] reports what was bound.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<WrapperServer> {
        Self::bind_throttled(addr, Duration::ZERO)
    }

    /// Like [`WrapperServer::bind`], but every tuple costs an extra
    /// `per_tuple` on top of the modelled gap — an artificial handicap for
    /// exercising rate-aware replica selection against a deliberately slow
    /// endpoint.
    pub fn bind_throttled(
        addr: impl ToSocketAddrs,
        per_tuple: Duration,
    ) -> io::Result<WrapperServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = thread::spawn(move || {
            let mut next_id: u64 = 0;
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(conn) = conn else { continue };
                conn.set_nodelay(true).ok();
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = conn.try_clone() {
                    accept_conns.lock().unwrap().insert(id, clone);
                }
                let conn_stop = Arc::clone(&accept_stop);
                let conn_registry = Arc::clone(&accept_conns);
                let handle = thread::spawn(move || {
                    serve_connection(conn, conn_stop, per_tuple);
                    // Self-removal keeps the registry bounded across many
                    // short-lived connections (e.g. liveness probes).
                    conn_registry.lock().unwrap().remove(&id);
                });
                let mut hs = accept_handlers.lock().unwrap();
                hs.retain(|h| !h.is_finished());
                hs.push(handle);
            }
        });
        Ok(WrapperServer {
            addr,
            stop,
            conns,
            handlers,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address actually bound (resolves `--port 0`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Sever every live mediator connection — the "kill the wrapper
    /// mid-query" lever: peers observe an immediate disconnect, not a
    /// silence.
    pub fn drop_connections(&self) {
        let mut conns = self.conns.lock().unwrap();
        for (_, c) in conns.drain() {
            c.shutdown(Shutdown::Both).ok();
        }
    }

    /// Stop accepting, sever connections, and join every thread the
    /// server spawned (accept loop, connection handlers, producers).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect to unblock the accept loop.
        TcpStream::connect(self.addr).ok();
        self.drop_connections();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handlers {
            h.join().ok();
        }
    }

    /// Park the calling thread while the server runs (the `dqs wrapper`
    /// foreground loop). Returns only if the accept thread dies.
    pub fn run_forever(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// One mediator connection: route `Open`s to producers and `WindowGrant`s
/// to their credit pools until the peer goes away. Joins its producers
/// before returning, so a finished handler means no stray threads.
fn serve_connection(conn: TcpStream, stop: Arc<AtomicBool>, per_tuple: Duration) {
    let credits = Arc::new((Mutex::new(Credits::default()), Condvar::new()));
    let writer = Arc::new(Mutex::new(OutChannel {
        stream: match conn.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        },
        wb: WriteBuffer::new(),
    }));
    let mut producers: Vec<JoinHandle<()>> = Vec::new();
    let mut reader = conn;
    // A read that yields a clean close, reset, or garbage means this
    // connection is done; fall through to poison the credit pool so
    // producers exit.
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        match frame {
            Frame::Open {
                rel,
                total,
                window,
                seed,
                stream,
                delay,
                resume_from,
            } => {
                {
                    let (lock, _) = &*credits;
                    lock.lock().unwrap().by_rel.insert(rel, u64::from(window));
                }
                let producer_credits = Arc::clone(&credits);
                let producer_writer = Arc::clone(&writer);
                let producer_stop = Arc::clone(&stop);
                producers.push(thread::spawn(move || {
                    produce(
                        rel,
                        total,
                        resume_from,
                        seed,
                        &stream,
                        delay,
                        per_tuple,
                        producer_credits,
                        producer_writer,
                        producer_stop,
                    )
                }));
            }
            Frame::WindowGrant { rel, credits: c } => {
                let (lock, cond) = &*credits;
                let mut pool = lock.lock().unwrap();
                *pool.by_rel.entry(rel).or_insert(0) += u64::from(c);
                cond.notify_all();
            }
            // Anything else is a protocol error from the peer; drop it.
            _ => break,
        }
    }
    // Poison: wake every producer so none waits forever on credits.
    reader.shutdown(Shutdown::Both).ok();
    let (lock, cond) = &*credits;
    lock.lock().unwrap().dead = true;
    cond.notify_all();
    for p in producers {
        p.join().ok();
    }
}

/// Sleep `gap`, a slice at a time, bailing out early when the server
/// stops or the connection's credit pool is poisoned.
fn interruptible_sleep(
    gap: Duration,
    stop: &AtomicBool,
    credits: &(Mutex<Credits>, Condvar),
) -> bool {
    let mut left = gap;
    while !left.is_zero() {
        if stop.load(Ordering::SeqCst) || credits.0.lock().unwrap().dead {
            return false;
        }
        let slice = left.min(SLEEP_SLICE);
        thread::sleep(slice);
        left -= slice;
    }
    true
}

/// Serve one relation from `resume_from`: sleep the modelled gap, wait
/// for window credit, ship the tuple. Exits when done, when the
/// connection dies, or when the server stops.
#[allow(clippy::too_many_arguments)]
fn produce(
    rel: RelId,
    total: u64,
    resume_from: u64,
    seed: u64,
    stream: &str,
    delay: DelayModel,
    per_tuple: Duration,
    credits: Arc<(Mutex<Credits>, Condvar)>,
    writer: Arc<Mutex<OutChannel>>,
    stop: Arc<AtomicBool>,
) {
    let mut rng = SeedSplitter::new(seed).stream(stream);
    for i in resume_from..total {
        let gap = Duration::from_nanos(delay.gap(i, &mut rng).as_nanos()) + per_tuple;
        if !interruptible_sleep(gap, &stop, &credits) {
            return;
        }
        // Wait for a window credit (the remote suspension).
        {
            let (lock, cond) = &*credits;
            let mut pool = lock.lock().unwrap();
            loop {
                if pool.dead || stop.load(Ordering::SeqCst) {
                    return;
                }
                let available = pool.by_rel.get(&rel).copied().unwrap_or(0);
                if available > 0 {
                    *pool.by_rel.get_mut(&rel).unwrap() = available - 1;
                    break;
                }
                let (p, _) = cond.wait_timeout(pool, Duration::from_millis(100)).unwrap();
                pool = p;
            }
        }
        let batch = Frame::TupleBatch {
            rel,
            keys: vec![synth_key(rel, i)],
        };
        if !writer.lock().unwrap().send(&batch) {
            return; // peer gone; the mediator sees the disconnect
        }
    }
    writer.lock().unwrap().send(&Frame::Eof { rel });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_sim::SimDuration;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    use dqs_source::{Notice, RemoteOpen, RemoteWrapper, TupleSource};

    fn open(rel: u16, total: u64, window: u32) -> RemoteOpen {
        RemoteOpen {
            rel: RelId(rel),
            total,
            window,
            seed: 42,
            stream: format!("wrapper:r{rel}"),
            delay: DelayModel::Constant {
                w: SimDuration::from_nanos(100),
            },
            resume_from: 0,
        }
    }

    /// Drain one RemoteWrapper to completion, returning its keys.
    fn drain(mut w: RemoteWrapper, nrx: std::sync::mpsc::Receiver<Notice>) -> Vec<u64> {
        let mut keys = Vec::new();
        while !w.exhausted() {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => keys.push(w.emit().key),
                other => panic!("unexpected notice: {other:?}"),
            }
        }
        keys
    }

    #[test]
    fn serves_a_relation_end_to_end_with_the_windowed_protocol() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        // Window of 4 forces many grant round-trips for 50 tuples.
        let w = RemoteWrapper::connect(
            server.local_addr(),
            open(5, 50, 4),
            ntx,
            Duration::from_secs(10),
        )
        .unwrap();
        let mut w = w;
        w.start();
        let keys = drain(w, nrx);
        let expected: Vec<u64> = (0..50).map(|i| synth_key(RelId(5), i)).collect();
        assert_eq!(keys, expected);
        server.shutdown();
    }

    #[test]
    fn serves_two_relations_on_one_connection_worth_of_server() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let mut handles = Vec::new();
        for rel in [1u16, 2u16] {
            let addr = server.local_addr();
            handles.push(thread::spawn(move || {
                let (ntx, nrx) = channel();
                let mut w =
                    RemoteWrapper::connect(addr, open(rel, 30, 8), ntx, Duration::from_secs(10))
                        .unwrap();
                w.start();
                drain(w, nrx)
            }));
        }
        let keys: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, rel) in [1u16, 2u16].iter().enumerate() {
            let expected: Vec<u64> = (0..30).map(|j| synth_key(RelId(*rel), j)).collect();
            assert_eq!(keys[i], expected);
        }
        server.shutdown();
    }

    #[test]
    fn honors_resume_from_serving_only_the_remainder() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        let mut spec = open(6, 40, 8);
        spec.resume_from = 25;
        let mut w = RemoteWrapper::connect(server.local_addr(), spec, ntx, Duration::from_secs(10))
            .unwrap();
        assert_eq!(w.produced(), 25, "a resumed source starts part-done");
        w.start();
        let keys = drain(w, nrx);
        let expected: Vec<u64> = (25..40).map(|i| synth_key(RelId(6), i)).collect();
        assert_eq!(keys, expected, "only the undelivered suffix is served");
        server.shutdown();
    }

    #[test]
    fn dropping_connections_faults_the_client_side() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        // Slow delivery so the kill lands mid-stream.
        let mut spec = open(7, 10_000, 16);
        spec.delay = DelayModel::Constant {
            w: SimDuration::from_micros(500),
        };
        let mut w = RemoteWrapper::connect(server.local_addr(), spec, ntx, Duration::from_secs(10))
            .unwrap();
        w.start();
        // Take a few tuples, then sever.
        let mut got = 0;
        while got < 3 {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => {
                    w.emit();
                    got += 1;
                }
                other => panic!("unexpected notice: {other:?}"),
            }
        }
        server.drop_connections();
        loop {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => {
                    w.emit();
                }
                Notice::Fault { error, .. } => {
                    assert_eq!(error.kind(), "disconnected", "{error}");
                    break;
                }
                other => panic!("unexpected notice: {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_interrupts_long_modelled_gaps_promptly() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, _nrx) = channel();
        // A gap far longer than the test's patience: shutdown must not
        // wait it out.
        let mut spec = open(3, 10, 4);
        spec.delay = DelayModel::Constant {
            w: SimDuration::from_secs(60),
        };
        let mut w = RemoteWrapper::connect(server.local_addr(), spec, ntx, Duration::from_secs(10))
            .unwrap();
        w.start();
        let begun = std::time::Instant::now();
        server.shutdown();
        assert!(
            begun.elapsed() < Duration::from_secs(5),
            "shutdown joined producers without sleeping out the gap: {:?}",
            begun.elapsed()
        );
    }
}
