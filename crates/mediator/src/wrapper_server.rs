//! The standalone wrapper-server: the remote half of the window protocol.
//!
//! A [`WrapperServer`] listens for mediator connections. Each connection
//! carries one or more `Open` frames; every `Open` starts a producer
//! thread that serves that relation — drawing inter-tuple gaps from the
//! requested delay model with the requested seeded stream (so a remote
//! run delivers byte-for-byte the tuples and pacing an in-process
//! `ThreadedWrapper` would), sleeping them for real, and shipping each
//! tuple as a `TupleBatch` frame while respecting the flow-control
//! window: the producer holds at most `window` unacknowledged tuples and
//! waits for `WindowGrant` credits beyond that, which is the paper's
//! §2.1 suspension performed by the *source* side of the wire.
//!
//! The server keeps a registry of live connections so tests (and the
//! mediator-kill scenario) can sever every peer at once with
//! [`WrapperServer::drop_connections`].

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use dqs_relop::{synth_key, RelId};
use dqs_sim::SeedSplitter;
use dqs_source::net::{read_frame, write_frame, Frame};
use dqs_source::DelayModel;

/// Per-connection flow-control state: available credits per opened
/// relation, plus a poison flag the reader raises when the socket dies.
#[derive(Debug, Default)]
struct Credits {
    by_rel: HashMap<RelId, u64>,
    dead: bool,
}

/// A serving wrapper process (minus the process): listener + producers.
#[derive(Debug)]
pub struct WrapperServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WrapperServer {
    /// Bind and start accepting. `addr` may use port 0 for an ephemeral
    /// port; [`WrapperServer::local_addr`] reports what was bound.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<WrapperServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(conn) = conn else { continue };
                conn.set_nodelay(true).ok();
                if let Ok(clone) = conn.try_clone() {
                    accept_conns.lock().unwrap().push(clone);
                }
                let conn_stop = Arc::clone(&accept_stop);
                thread::spawn(move || serve_connection(conn, conn_stop));
            }
        });
        Ok(WrapperServer {
            addr,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address actually bound (resolves `--port 0`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Sever every live mediator connection — the "kill the wrapper
    /// mid-query" lever: peers observe an immediate disconnect, not a
    /// silence.
    pub fn drop_connections(&self) {
        let mut conns = self.conns.lock().unwrap();
        for c in conns.drain(..) {
            c.shutdown(Shutdown::Both).ok();
        }
    }

    /// Stop accepting, sever connections, and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect to unblock the accept loop.
        TcpStream::connect(self.addr).ok();
        self.drop_connections();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }

    /// Park the calling thread while the server runs (the `dqs wrapper`
    /// foreground loop). Returns only if the accept thread dies.
    pub fn run_forever(mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

/// One mediator connection: route `Open`s to producers and `WindowGrant`s
/// to their credit pools until the peer goes away.
fn serve_connection(conn: TcpStream, stop: Arc<AtomicBool>) {
    let credits = Arc::new((Mutex::new(Credits::default()), Condvar::new()));
    let writer = Arc::new(Mutex::new(match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    }));
    let mut reader = conn;
    // A read that yields a clean close, reset, or garbage means this
    // connection is done; fall through to poison the credit pool so
    // producers exit.
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        match frame {
            Frame::Open {
                rel,
                total,
                window,
                seed,
                stream,
                delay,
            } => {
                {
                    let (lock, _) = &*credits;
                    lock.lock().unwrap().by_rel.insert(rel, u64::from(window));
                }
                let producer_credits = Arc::clone(&credits);
                let producer_writer = Arc::clone(&writer);
                let producer_stop = Arc::clone(&stop);
                thread::spawn(move || {
                    produce(
                        rel,
                        total,
                        seed,
                        &stream,
                        delay,
                        producer_credits,
                        producer_writer,
                        producer_stop,
                    )
                });
            }
            Frame::WindowGrant { rel, credits: c } => {
                let (lock, cond) = &*credits;
                let mut pool = lock.lock().unwrap();
                *pool.by_rel.entry(rel).or_insert(0) += u64::from(c);
                cond.notify_all();
            }
            // Anything else is a protocol error from the peer; drop it.
            _ => break,
        }
    }
    // Poison: wake every producer so none waits forever on credits.
    reader.shutdown(Shutdown::Both).ok();
    let (lock, cond) = &*credits;
    lock.lock().unwrap().dead = true;
    cond.notify_all();
}

/// Serve one relation: sleep the modelled gap, wait for window credit,
/// ship the tuple. Exits when done, when the connection dies, or when the
/// server stops.
#[allow(clippy::too_many_arguments)]
fn produce(
    rel: RelId,
    total: u64,
    seed: u64,
    stream: &str,
    delay: DelayModel,
    credits: Arc<(Mutex<Credits>, Condvar)>,
    writer: Arc<Mutex<TcpStream>>,
    stop: Arc<AtomicBool>,
) {
    let mut rng = SeedSplitter::new(seed).stream(stream);
    for i in 0..total {
        let gap = delay.gap(i, &mut rng);
        thread::sleep(Duration::from_nanos(gap.as_nanos()));
        // Wait for a window credit (the remote suspension).
        {
            let (lock, cond) = &*credits;
            let mut pool = lock.lock().unwrap();
            loop {
                if pool.dead || stop.load(Ordering::SeqCst) {
                    return;
                }
                let available = pool.by_rel.get(&rel).copied().unwrap_or(0);
                if available > 0 {
                    *pool.by_rel.get_mut(&rel).unwrap() = available - 1;
                    break;
                }
                let (p, _) = cond.wait_timeout(pool, Duration::from_millis(100)).unwrap();
                pool = p;
            }
        }
        let batch = Frame::TupleBatch {
            rel,
            keys: vec![synth_key(rel, i)],
        };
        let mut w = writer.lock().unwrap();
        if write_frame(&mut *w, &batch).is_err() {
            return; // peer gone; the mediator sees the disconnect
        }
    }
    let mut w = writer.lock().unwrap();
    write_frame(&mut *w, &Frame::Eof { rel }).ok();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_sim::SimDuration;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    use dqs_source::{Notice, RemoteOpen, RemoteWrapper, TupleSource};

    fn open(rel: u16, total: u64, window: u32) -> RemoteOpen {
        RemoteOpen {
            rel: RelId(rel),
            total,
            window,
            seed: 42,
            stream: format!("wrapper:r{rel}"),
            delay: DelayModel::Constant {
                w: SimDuration::from_nanos(100),
            },
        }
    }

    /// Drain one RemoteWrapper to completion, returning its keys.
    fn drain(mut w: RemoteWrapper, nrx: std::sync::mpsc::Receiver<Notice>) -> Vec<u64> {
        let mut keys = Vec::new();
        while !w.exhausted() {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => keys.push(w.emit().key),
                Notice::Fault { error, .. } => panic!("fault: {error}"),
            }
        }
        keys
    }

    #[test]
    fn serves_a_relation_end_to_end_with_the_windowed_protocol() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        // Window of 4 forces many grant round-trips for 50 tuples.
        let w = RemoteWrapper::connect(
            server.local_addr(),
            open(5, 50, 4),
            ntx,
            Duration::from_secs(10),
        )
        .unwrap();
        let mut w = w;
        w.start();
        let keys = drain(w, nrx);
        let expected: Vec<u64> = (0..50).map(|i| synth_key(RelId(5), i)).collect();
        assert_eq!(keys, expected);
        server.shutdown();
    }

    #[test]
    fn serves_two_relations_on_one_connection_worth_of_server() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let mut handles = Vec::new();
        for rel in [1u16, 2u16] {
            let addr = server.local_addr();
            handles.push(thread::spawn(move || {
                let (ntx, nrx) = channel();
                let mut w =
                    RemoteWrapper::connect(addr, open(rel, 30, 8), ntx, Duration::from_secs(10))
                        .unwrap();
                w.start();
                drain(w, nrx)
            }));
        }
        let keys: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, rel) in [1u16, 2u16].iter().enumerate() {
            let expected: Vec<u64> = (0..30).map(|j| synth_key(RelId(*rel), j)).collect();
            assert_eq!(keys[i], expected);
        }
        server.shutdown();
    }

    #[test]
    fn dropping_connections_faults_the_client_side() {
        let server = WrapperServer::bind("127.0.0.1:0").unwrap();
        let (ntx, nrx) = channel();
        // Slow delivery so the kill lands mid-stream.
        let mut spec = open(7, 10_000, 16);
        spec.delay = DelayModel::Constant {
            w: SimDuration::from_micros(500),
        };
        let mut w = RemoteWrapper::connect(server.local_addr(), spec, ntx, Duration::from_secs(10))
            .unwrap();
        w.start();
        // Take a few tuples, then sever.
        let mut got = 0;
        while got < 3 {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => {
                    w.emit();
                    got += 1;
                }
                Notice::Fault { error, .. } => panic!("premature fault: {error}"),
            }
        }
        server.drop_connections();
        loop {
            match nrx.recv_timeout(Duration::from_secs(30)).expect("notice") {
                Notice::Arrival(_) => {
                    w.emit();
                }
                Notice::Fault { error, .. } => {
                    assert_eq!(error.kind(), "disconnected", "{error}");
                    break;
                }
            }
        }
        server.shutdown();
    }
}
