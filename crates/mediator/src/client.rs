//! The submitting client: `dqs submit`'s library half.
//!
//! [`submit`] opens a connection to a mediator, sends one `Submit` frame,
//! and walks the session lifecycle — reporting `Queued`/`Accepted`/`Trace`
//! frames through a progress callback — until a terminal `Done`,
//! `Rejected` or `Error` frame arrives.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use dqs_exec::json;
use dqs_relop::RelId;
use dqs_source::net::{read_frame, write_frame, Frame};

/// Submission options.
#[derive(Debug, Clone)]
pub struct SubmitOpts {
    /// Strategy name (`seq` | `ma` | `scr` | `dse`).
    pub strategy: String,
    /// Optional seed override.
    pub seed: Option<u64>,
    /// Ask the mediator to stream JSON trace lines back.
    pub trace: bool,
    /// Ask the mediator to bypass its result cache for this session.
    pub no_cache: bool,
    /// How long to keep retrying the initial connect (exponential
    /// backoff) before giving up. [`Duration::ZERO`] means one attempt —
    /// fail immediately if the mediator isn't listening.
    pub connect_timeout: Duration,
}

impl Default for SubmitOpts {
    fn default() -> Self {
        SubmitOpts {
            strategy: "dse".into(),
            seed: None,
            trace: false,
            no_cache: false,
            connect_timeout: Duration::ZERO,
        }
    }
}

/// First retry delay; doubles per attempt up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(50);
/// Ceiling on the per-attempt backoff delay.
const BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Dial `addr`, retrying with exponential backoff until `timeout` has
/// elapsed. A zero timeout is a single attempt. This is what makes the
/// 3-process quickstart scriptable: `dqs submit` can be launched in the
/// same breath as `dqs serve` without a `sleep` between them.
fn connect_with_retry(
    addr: impl ToSocketAddrs,
    timeout: Duration,
) -> Result<TcpStream, ClientError> {
    let deadline = Instant::now() + timeout;
    let mut backoff = BACKOFF_START;
    loop {
        match TcpStream::connect(&addr) {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ClientError::Io(e.to_string()));
                }
                std::thread::sleep(backoff.min(deadline - now));
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
        }
    }
}

/// Mid-session progress reported to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Progress {
    /// Waiting in the mediator's backlog at this position.
    Queued(u32),
    /// Admitted: session id and granted memory partition.
    Accepted {
        /// The server-assigned session id.
        session: u64,
        /// The memory partition the query runs under, bytes.
        memory_bytes: u64,
    },
    /// One JSON engine-event line.
    TraceLine(String),
}

/// The metrics a remote run reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteMetrics {
    /// Strategy that ran.
    pub strategy: String,
    /// Response time in seconds.
    pub response_secs: f64,
    /// Result tuples produced.
    pub output_tuples: u64,
    /// The full metrics JSON, for anything not lifted into a field.
    pub raw: String,
}

/// Why a submission failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the mediator.
    Io(String),
    /// The mediator refused the submission.
    Rejected(String),
    /// The query was admitted but aborted server-side.
    Server(String),
    /// The mediator sent something the protocol does not allow here.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Rejected(r) => write!(f, "submission rejected: {r}"),
            ClientError::Server(e) => write!(f, "query aborted: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Submit `spec_json` to the mediator at `addr` and wait for the result,
/// reporting lifecycle frames to `on_progress` as they arrive.
pub fn submit(
    addr: impl ToSocketAddrs,
    spec_json: &str,
    opts: &SubmitOpts,
    mut on_progress: impl FnMut(Progress),
) -> Result<RemoteMetrics, ClientError> {
    let mut conn = connect_with_retry(addr, opts.connect_timeout)?;
    conn.set_nodelay(true).ok();
    write_frame(
        &mut conn,
        &Frame::Submit {
            strategy: opts.strategy.clone(),
            trace: opts.trace,
            no_cache: opts.no_cache,
            seed: opts.seed,
            spec_json: spec_json.to_string(),
        },
    )
    .map_err(|e| ClientError::Io(e.to_string()))?;

    loop {
        match read_frame(&mut conn) {
            Ok(Some(Frame::Queued { position })) => on_progress(Progress::Queued(position)),
            Ok(Some(Frame::Accepted {
                session,
                memory_bytes,
            })) => on_progress(Progress::Accepted {
                session,
                memory_bytes,
            }),
            Ok(Some(Frame::Trace { line })) => on_progress(Progress::TraceLine(line)),
            Ok(Some(Frame::Rejected { reason })) => return Err(ClientError::Rejected(reason)),
            Ok(Some(Frame::Error { code, message })) => {
                return Err(ClientError::Server(format!("[{code}] {message}")))
            }
            Ok(Some(Frame::Done { metrics_json })) => return parse_metrics(&metrics_json),
            Ok(Some(other)) => {
                return Err(ClientError::Protocol(format!(
                    "unexpected frame from mediator: {other:?}"
                )))
            }
            Ok(None) => {
                return Err(ClientError::Protocol(
                    "mediator closed the connection without a terminal frame".into(),
                ))
            }
            Err(e) => return Err(ClientError::Io(e.to_string())),
        }
    }
}

/// Ask the mediator at `addr` to drop cached scans — all of them, one
/// relation's, one logical wrapper's (the replica-group id, which is
/// what cache keys carry — not a pinned endpoint address), or the
/// conjunction of both filters. Returns `(entries_removed,
/// bytes_released)`; a mediator with no cache configured reports
/// `(0, 0)`.
pub fn invalidate(
    addr: impl ToSocketAddrs,
    rel: Option<RelId>,
    wrapper: Option<String>,
    connect_timeout: Duration,
) -> Result<(u64, u64), ClientError> {
    let mut conn = connect_with_retry(addr, connect_timeout)?;
    conn.set_nodelay(true).ok();
    write_frame(&mut conn, &Frame::Invalidate { rel, wrapper })
        .map_err(|e| ClientError::Io(e.to_string()))?;
    match read_frame(&mut conn) {
        Ok(Some(Frame::Invalidated { entries, bytes })) => Ok((entries, bytes)),
        Ok(Some(other)) => Err(ClientError::Protocol(format!(
            "unexpected frame from mediator: {other:?}"
        ))),
        Ok(None) => Err(ClientError::Protocol(
            "mediator closed the connection without replying".into(),
        )),
        Err(e) => Err(ClientError::Io(e.to_string())),
    }
}

fn parse_metrics(text: &str) -> Result<RemoteMetrics, ClientError> {
    let v =
        json::parse(text).map_err(|e| ClientError::Protocol(format!("bad metrics JSON: {e}")))?;
    let obj = v
        .as_object()
        .ok_or_else(|| ClientError::Protocol("metrics JSON is not an object".into()))?;
    let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    Ok(RemoteMetrics {
        strategy: get("strategy")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string(),
        response_secs: get("response_secs").and_then(|v| v.as_f64()).unwrap_or(0.0),
        output_tuples: get("output_tuples")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| ClientError::Protocol("metrics JSON lacks output_tuples".into()))?,
        raw: text.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_metrics_lifts_the_reported_fields() {
        let m = parse_metrics("{\"strategy\":\"seq\",\"response_secs\":1.5,\"output_tuples\":42}")
            .unwrap();
        assert_eq!(m.strategy, "seq");
        assert_eq!(m.output_tuples, 42);
        assert!((m.response_secs - 1.5).abs() < 1e-9);
    }

    #[test]
    fn parse_metrics_requires_the_cardinality() {
        assert!(matches!(
            parse_metrics("{\"strategy\":\"seq\"}"),
            Err(ClientError::Protocol(_))
        ));
        assert!(matches!(
            parse_metrics("not json"),
            Err(ClientError::Protocol(_))
        ));
    }
}
