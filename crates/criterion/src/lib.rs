//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a miniature benchmark harness exposing the subset of criterion's API the
//! `benches/` directory uses: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! (`throughput`, `sample_size`), and [`Bencher::iter`] /
//! [`Bencher::iter_batched`].
//!
//! Measurement is deliberately simple — warm up briefly, time a fixed
//! number of samples with `std::time::Instant`, report the median — with
//! none of criterion's outlier analysis, HTML reports, or baseline
//! comparisons. Numbers are for coarse before/after comparison on the same
//! machine, nothing more.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// How throughput is reported for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration batching mode for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: one setup per routine call.
    SmallInput,
    /// Large inputs: identical behaviour here (one setup per call).
    LargeInput,
}

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by a parameter's `Display` rendering.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    /// Wall-clock samples gathered so far (per-iteration durations).
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Time `routine`, calling it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly a millisecond so Instant overhead stays negligible.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn report(group: Option<&str>, name: &str, bencher: &mut Bencher, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    match bencher.median() {
        Some(median) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                    format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                    format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench {label:<48} median {median:>12.3?}{rate}");
        }
        None => println!("bench {label:<48} (no samples)"),
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 15 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_count: 15,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        report(None, name, &mut b, None);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        report(Some(&self.name), name, &mut b, self.throughput);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.0, &mut b, self.throughput);
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion { sample_count: 3 };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4).throughput(Throughput::Elements(1));
        let mut setups = 0;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| (),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
