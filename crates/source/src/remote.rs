//! A wrapper on the far side of a socket.
//!
//! [`RemoteWrapper`] is the mediator's half of the wire protocol in
//! [`crate::net`]: it opens a TCP connection to a wrapper-server, sends
//! [`Frame::Open`], and runs a reader thread that turns incoming
//! [`Frame::TupleBatch`]es into tuples on a bounded channel — the same
//! shape as [`crate::ThreadedWrapper`], so the real-time driver cannot
//! tell a thread from a network peer. Consumed tuples are acknowledged
//! back as [`Frame::WindowGrant`]s, closing the paper's §2.1 window loop
//! across the wire.
//!
//! Failure is a first-class outcome here: a peer disconnect, a read
//! timeout or a protocol violation becomes a terminal
//! [`Notice::Fault`] on the driver's notify channel, so the engine aborts
//! with a typed reason instead of waiting forever on a silent socket.

use std::io::ErrorKind;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread;
use std::time::Duration;

use dqs_relop::{RelId, Tuple};
use dqs_sim::SimDuration;

use crate::delay::DelayModel;
use crate::net::{read_frame, write_frame, Frame, FrameError};
use crate::source::{Notice, SourceError, TupleSource};

/// Everything the wrapper-server needs to start serving one relation.
#[derive(Debug, Clone)]
pub struct RemoteOpen {
    /// The relation to serve.
    pub rel: RelId,
    /// Tuples to deliver.
    pub total: u64,
    /// Flow-control window in tuples (also the local channel bound).
    pub window: u32,
    /// Master seed for the server's delay stream.
    pub seed: u64,
    /// Seed-splitter stream label (e.g. `wrapper:orders`), so the remote
    /// pacing reproduces the in-process `ThreadedWrapper` exactly.
    pub stream: String,
    /// Delivery pacing the server should perform.
    pub delay: DelayModel,
    /// First tuple index to deliver (0 = fresh scan). A failover resume
    /// re-opens on a peer replica with this set to the next undelivered
    /// index; tuple payloads are pure functions of `(rel, index, seed)`,
    /// so the resumed stream is bit-identical to the lost remainder.
    pub resume_from: u64,
}

/// A [`TupleSource`] fed by a remote wrapper-server over TCP.
#[derive(Debug)]
pub struct RemoteWrapper {
    open: RemoteOpen,
    produced: u64,
    suspended: bool,
    /// Tuples consumed since the last window grant.
    ungranted: u32,
    reader: Option<TcpStream>,
    writer: TcpStream,
    notify: Option<Sender<Notice>>,
    data_tx: Option<SyncSender<Tuple>>,
    data_rx: Receiver<Tuple>,
}

pub(crate) fn sock_err(e: std::io::Error, what: &str) -> SourceError {
    SourceError::Io {
        detail: format!("{what}: {e}"),
    }
}

/// Classify a failed frame read into the source-level failure taxonomy.
pub(crate) fn frame_err(e: FrameError, timeout: Duration) -> SourceError {
    if e.is_timeout() {
        return SourceError::Timeout {
            millis: timeout.as_millis() as u64,
        };
    }
    match e {
        FrameError::Io {
            kind: ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted | ErrorKind::BrokenPipe,
            detail,
        } => SourceError::Disconnected { detail },
        FrameError::Io { detail, .. } => SourceError::Io { detail },
        other => SourceError::Protocol {
            detail: other.to_string(),
        },
    }
}

impl RemoteWrapper {
    /// Connect to the wrapper-server at `addr` and prepare (but do not
    /// start) a source for `open`. The read half gets `read_timeout` so a
    /// silent peer surfaces as a [`SourceError::Timeout`] fault instead of
    /// a hang. Connection failures are returned, not deferred: a mediator
    /// admitting a session finds out immediately that a wrapper is down.
    pub fn connect(
        addr: impl ToSocketAddrs,
        open: RemoteOpen,
        notify: Sender<Notice>,
        read_timeout: Duration,
    ) -> Result<Self, SourceError> {
        assert!(open.window > 0, "window must be positive");
        let writer = TcpStream::connect(addr).map_err(|e| sock_err(e, "connect"))?;
        writer.set_nodelay(true).ok();
        let reader = writer
            .try_clone()
            .map_err(|e| sock_err(e, "clone socket"))?;
        reader
            .set_read_timeout(Some(read_timeout))
            .map_err(|e| sock_err(e, "set read timeout"))?;
        let (data_tx, data_rx) = sync_channel(open.window as usize);
        let produced = open.resume_from;
        Ok(RemoteWrapper {
            open,
            produced,
            suspended: false,
            ungranted: 0,
            reader: Some(reader),
            writer,
            notify: Some(notify),
            data_tx: Some(data_tx),
            data_rx,
        })
    }

    /// The reader-thread body: decode frames until EOF-of-relation, a
    /// failure, or abandonment (engine dropped its receiver).
    fn pump(
        mut reader: TcpStream,
        open: RemoteOpen,
        tx: SyncSender<Tuple>,
        notify: Sender<Notice>,
        timeout: Duration,
    ) {
        let fault = |notify: &Sender<Notice>, error: SourceError| {
            notify
                .send(Notice::Fault {
                    rel: open.rel,
                    error,
                })
                .ok();
        };
        // How many tuples this connection owes (a resumed scan delivers
        // only the remainder).
        let owed = open.total.saturating_sub(open.resume_from);
        let mut seen: u64 = 0;
        loop {
            let frame = match read_frame(&mut reader) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    fault(
                        &notify,
                        SourceError::Disconnected {
                            detail: format!("wrapper closed after {seen} of {owed} tuples"),
                        },
                    );
                    return;
                }
                Err(e) => {
                    fault(&notify, frame_err(e, timeout));
                    return;
                }
            };
            match frame {
                Frame::TupleBatch { rel, keys } => {
                    if rel != open.rel {
                        fault(
                            &notify,
                            SourceError::Protocol {
                                detail: format!(
                                    "batch for relation {} on a stream opened for {}",
                                    rel.0, open.rel.0
                                ),
                            },
                        );
                        return;
                    }
                    for key in keys {
                        seen += 1;
                        if seen > owed {
                            fault(
                                &notify,
                                SourceError::Protocol {
                                    detail: format!(
                                        "wrapper sent more than the {owed} tuples opened"
                                    ),
                                },
                            );
                            return;
                        }
                        // Data before notice: emit() must never block.
                        if tx.send(Tuple::new(key, rel)).is_err() {
                            return; // run abandoned
                        }
                        if notify.send(Notice::Arrival(rel)).is_err() {
                            return;
                        }
                    }
                }
                Frame::Eof { rel } => {
                    if rel != open.rel || seen != owed {
                        fault(
                            &notify,
                            SourceError::Protocol {
                                detail: format!(
                                    "eof for relation {} after {seen} of {owed} tuples",
                                    rel.0
                                ),
                            },
                        );
                    }
                    return;
                }
                Frame::Error { code, message } => {
                    fault(
                        &notify,
                        SourceError::Protocol {
                            detail: format!("wrapper error {code}: {message}"),
                        },
                    );
                    return;
                }
                other => {
                    fault(
                        &notify,
                        SourceError::Protocol {
                            detail: format!("unexpected frame on data stream: {other:?}"),
                        },
                    );
                    return;
                }
            }
        }
    }
}

impl TupleSource for RemoteWrapper {
    fn rel(&self) -> RelId {
        self.open.rel
    }

    fn total(&self) -> u64 {
        self.open.total
    }

    fn produced(&self) -> u64 {
        self.produced
    }

    fn is_suspended(&self) -> bool {
        self.suspended
    }

    fn suspend(&mut self) {
        self.suspended = true;
    }

    fn resume(&mut self) {
        self.suspended = false;
    }

    fn start(&mut self) {
        let reader = self.reader.take().expect("started twice");
        let notify = self.notify.take().expect("started twice");
        let tx = self.data_tx.take().expect("started twice");
        let open = self.open.clone();
        let timeout = reader
            .read_timeout()
            .ok()
            .flatten()
            .unwrap_or(Duration::from_secs(30));
        // The sub-query: tell the wrapper what to serve and how.
        let open_frame = Frame::Open {
            rel: open.rel,
            total: open.total,
            window: open.window,
            seed: open.seed,
            stream: open.stream.clone(),
            delay: open.delay.clone(),
            resume_from: open.resume_from,
        };
        if let Err(e) = write_frame(&mut self.writer, &open_frame) {
            notify
                .send(Notice::Fault {
                    rel: open.rel,
                    error: frame_err(e, timeout),
                })
                .ok();
            return;
        }
        thread::spawn(move || Self::pump(reader, open, tx, notify, timeout));
    }

    /// Push-paced: arrivals are announced on the notify channel.
    fn next_gap(&mut self) -> Option<SimDuration> {
        None
    }

    fn emit(&mut self) -> Tuple {
        assert!(
            self.produced < self.open.total,
            "emit from exhausted wrapper"
        );
        // Data is sent before its notification, so this never blocks when
        // called in response to a notify.
        let t = self
            .data_rx
            .recv()
            .expect("reader thread died before delivering all tuples");
        self.produced += 1;
        self.ungranted += 1;
        // Return credits once half the window is consumed; a write failure
        // is not fatal here — the reader thread will observe the broken
        // connection and raise the fault.
        if u64::from(self.ungranted) * 2 >= u64::from(self.open.window)
            || self.produced == self.open.total
        {
            let grant = Frame::WindowGrant {
                rel: self.open.rel,
                credits: self.ungranted,
            };
            if write_frame(&mut self.writer, &grant).is_ok() {
                self.ungranted = 0;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_relop::synth_key;
    use std::net::TcpListener;
    use std::sync::mpsc::channel;

    /// A hand-rolled single-shot wrapper peer for exercising the client
    /// side without the full wrapper-server.
    fn one_shot_server(listener: TcpListener, behave: impl FnOnce(TcpStream) + Send + 'static) {
        thread::spawn(move || {
            let (conn, _) = listener.accept().expect("accept");
            behave(conn);
        });
    }

    fn mk_open(total: u64) -> RemoteOpen {
        RemoteOpen {
            rel: RelId(3),
            total,
            window: 8,
            seed: 42,
            stream: "wrapper:test".into(),
            delay: DelayModel::Constant {
                w: SimDuration::from_nanos(1),
            },
            resume_from: 0,
        }
    }

    #[test]
    fn delivers_remote_tuples_and_grants_windows() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        one_shot_server(listener, |mut conn| {
            let open = read_frame(&mut conn).unwrap().unwrap();
            let (rel, total, window) = match open {
                Frame::Open {
                    rel, total, window, ..
                } => (rel, total, window),
                other => panic!("expected Open, got {other:?}"),
            };
            let mut credits = u64::from(window);
            let mut sent = 0u64;
            while sent < total {
                while credits == 0 {
                    match read_frame(&mut conn).unwrap().unwrap() {
                        Frame::WindowGrant { credits: c, .. } => credits += u64::from(c),
                        other => panic!("expected grant, got {other:?}"),
                    }
                }
                let batch = Frame::TupleBatch {
                    rel,
                    keys: vec![synth_key(rel, sent)],
                };
                write_frame(&mut conn, &batch).unwrap();
                sent += 1;
                credits -= 1;
            }
            write_frame(&mut conn, &Frame::Eof { rel }).unwrap();
            // Drain until the client closes: dropping the socket with
            // unread grants in flight raises an RST that can discard the
            // buffered Eof on the client side.
            while let Ok(Some(_)) = read_frame(&mut conn) {}
        });

        let (ntx, nrx) = channel();
        let mut w =
            RemoteWrapper::connect(addr, mk_open(40), ntx, Duration::from_secs(10)).unwrap();
        w.start();
        let mut keys = Vec::new();
        for _ in 0..40 {
            match nrx.recv().expect("notify") {
                Notice::Arrival(rel) => assert_eq!(rel, RelId(3)),
                other => panic!("unexpected notice: {other:?}"),
            }
            keys.push(w.emit().key);
        }
        assert!(w.exhausted());
        let expected: Vec<u64> = (0..40).map(|i| synth_key(RelId(3), i)).collect();
        assert_eq!(keys, expected, "same keys as the in-process wrappers");
    }

    #[test]
    fn peer_disconnect_becomes_a_fault_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        one_shot_server(listener, |mut conn| {
            let _ = read_frame(&mut conn); // consume Open
            let batch = Frame::TupleBatch {
                rel: RelId(3),
                keys: vec![1, 2],
            };
            write_frame(&mut conn, &batch).unwrap();
            // Drop the connection with 38 tuples still owed.
        });

        let (ntx, nrx) = channel();
        let mut w =
            RemoteWrapper::connect(addr, mk_open(40), ntx, Duration::from_secs(10)).unwrap();
        w.start();
        let mut arrivals = 0;
        loop {
            match nrx.recv_timeout(Duration::from_secs(20)).expect("notice") {
                Notice::Arrival(_) => {
                    let _ = w.emit();
                    arrivals += 1;
                }
                Notice::Fault { rel, error } => {
                    assert_eq!(rel, RelId(3));
                    assert_eq!(error.kind(), "disconnected", "{error}");
                    break;
                }
                other => panic!("unexpected notice: {other:?}"),
            }
        }
        assert_eq!(arrivals, 2);
    }

    #[test]
    fn silent_peer_times_out_into_a_fault() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        one_shot_server(listener, |mut conn| {
            let _ = read_frame(&mut conn); // consume Open, then say nothing
            thread::sleep(Duration::from_secs(2));
        });

        let (ntx, nrx) = channel();
        let mut w =
            RemoteWrapper::connect(addr, mk_open(4), ntx, Duration::from_millis(80)).unwrap();
        w.start();
        match nrx.recv_timeout(Duration::from_secs(20)).expect("notice") {
            Notice::Fault { error, .. } => assert_eq!(error.kind(), "timeout", "{error}"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn protocol_violation_becomes_a_fault() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        one_shot_server(listener, |mut conn| {
            let _ = read_frame(&mut conn);
            // A batch for the wrong relation.
            let batch = Frame::TupleBatch {
                rel: RelId(99),
                keys: vec![1],
            };
            write_frame(&mut conn, &batch).unwrap();
            thread::sleep(Duration::from_millis(200));
        });

        let (ntx, nrx) = channel();
        let mut w = RemoteWrapper::connect(addr, mk_open(4), ntx, Duration::from_secs(10)).unwrap();
        w.start();
        match nrx.recv_timeout(Duration::from_secs(20)).expect("notice") {
            Notice::Fault { error, .. } => assert_eq!(error.kind(), "protocol", "{error}"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn connect_to_dead_address_errors_immediately() {
        // Bind then drop to get a port that refuses connections.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let (ntx, _nrx) = channel();
        let r = RemoteWrapper::connect(addr, mk_open(4), ntx, Duration::from_secs(1));
        assert!(r.is_err(), "connect must fail eagerly");
    }
}
