//! Data-delivery delay models.
//!
//! §1.2 taxonomizes delivery problems into *initial delay* (only the first
//! tuple is late), *bursty arrival* (bursts separated by silence) and *slow
//! delivery* (regular but slow). §5.1.3 adds the experiment methodology:
//! per-tuple delays drawn uniformly from `[0, 2w]` for an average waiting
//! time of `w`, with `w_min = 20 µs` modelling a wrapper that reads
//! sequentially and ships over a 100 Mb/s network.
//!
//! A [`DelayModel`] yields the inter-tuple gap before each tuple index; all
//! randomness comes from the caller's seeded stream.

use dqs_sim::rng::uniform_delay;
use dqs_sim::SimDuration;
use rand_chacha::ChaCha8Rng;

/// How a wrapper paces its tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayModel {
    /// Fixed gap `w` before every tuple (ideal regular delivery; use
    /// `w = w_min` for a source with "no particular delays").
    Constant {
        /// Inter-tuple waiting time.
        w: SimDuration,
    },
    /// Uniformly distributed gap in `[0, 2·mean]` (§5.1.3's methodology;
    /// also the *slow delivery* case when `mean` is large).
    Uniform {
        /// Average inter-tuple waiting time.
        mean: SimDuration,
    },
    /// *Initial delay* (§1.2): the first tuple waits `initial`, the rest
    /// arrive with uniform gaps of average `mean`.
    Initial {
        /// Delay before the first tuple.
        initial: SimDuration,
        /// Average gap for subsequent tuples.
        mean: SimDuration,
    },
    /// *Bursty arrival* (§1.2): tuples come in bursts of `burst` spaced
    /// `within` apart, with a `pause` of no arrivals between bursts.
    Bursty {
        /// Tuples per burst (>= 1).
        burst: u64,
        /// Gap between tuples inside a burst.
        within: SimDuration,
        /// Silence between bursts.
        pause: SimDuration,
    },
}

impl DelayModel {
    /// Gap before tuple `index` (0-based).
    pub fn gap(&self, index: u64, rng: &mut ChaCha8Rng) -> SimDuration {
        match self {
            DelayModel::Constant { w } => *w,
            DelayModel::Uniform { mean } => uniform_delay(rng, *mean),
            DelayModel::Initial { initial, mean } => {
                if index == 0 {
                    *initial
                } else {
                    uniform_delay(rng, *mean)
                }
            }
            DelayModel::Bursty {
                burst,
                within,
                pause,
            } => {
                if index != 0 && index % burst == 0 {
                    *pause
                } else {
                    *within
                }
            }
        }
    }

    /// The *average* inter-tuple waiting time `w` of this model over `n`
    /// tuples — the quantity the paper's metrics reason about.
    pub fn mean_gap(&self, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        match self {
            DelayModel::Constant { w } => *w,
            DelayModel::Uniform { mean } => *mean,
            DelayModel::Initial { initial, mean } => {
                SimDuration::from_nanos((initial.as_nanos() + mean.as_nanos() * (n - 1)) / n)
            }
            DelayModel::Bursty {
                burst,
                within,
                pause,
            } => {
                let pauses = (n.saturating_sub(1)) / burst;
                let withins = n - pauses;
                SimDuration::from_nanos(
                    (pause.as_nanos() * pauses + within.as_nanos() * withins) / n,
                )
            }
        }
    }

    /// Expected total time for a wrapper to deliver `n` tuples with this
    /// model (ignoring flow control) — the X axis of Figures 6/7.
    pub fn expected_total(&self, n: u64) -> SimDuration {
        self.mean_gap(n).saturating_mul(n)
    }

    /// Standard deviation of the *total* delivery time of `n` tuples.
    /// Zero for the deterministic models; for uniform gaps on `[0, 2w]`
    /// each gap has std `w/√3`, and the independent sum scales with `√n`.
    pub fn total_std(&self, n: u64) -> SimDuration {
        let (per_gap_std_ns, gaps) = match self {
            DelayModel::Constant { .. } | DelayModel::Bursty { .. } => (0.0, 0),
            DelayModel::Uniform { mean } => (mean.as_nanos() as f64 / 3f64.sqrt(), n),
            DelayModel::Initial { mean, .. } => {
                (mean.as_nanos() as f64 / 3f64.sqrt(), n.saturating_sub(1))
            }
        };
        SimDuration::from_nanos((per_gap_std_ns * (gaps as f64).sqrt()).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_sim::SeedSplitter;

    fn rng() -> ChaCha8Rng {
        SeedSplitter::new(11).stream("delay-tests")
    }

    #[test]
    fn constant_is_constant() {
        let m = DelayModel::Constant {
            w: SimDuration::from_micros(20),
        };
        let mut r = rng();
        for i in 0..100 {
            assert_eq!(m.gap(i, &mut r), SimDuration::from_micros(20));
        }
        assert_eq!(m.mean_gap(100), SimDuration::from_micros(20));
    }

    #[test]
    fn uniform_average_approaches_mean() {
        let m = DelayModel::Uniform {
            mean: SimDuration::from_micros(50),
        };
        let mut r = rng();
        let n = 50_000u64;
        let total: u64 = (0..n).map(|i| m.gap(i, &mut r).as_nanos()).sum();
        let avg = total / n;
        assert!((avg as i64 - 50_000).abs() < 1_000, "{avg}");
        assert_eq!(m.mean_gap(n), SimDuration::from_micros(50));
    }

    #[test]
    fn initial_delays_only_first_tuple() {
        let m = DelayModel::Initial {
            initial: SimDuration::from_secs(3),
            mean: SimDuration::from_micros(10),
        };
        let mut r = rng();
        assert_eq!(m.gap(0, &mut r), SimDuration::from_secs(3));
        for i in 1..1000 {
            assert!(m.gap(i, &mut r) <= SimDuration::from_micros(20));
        }
    }

    #[test]
    fn bursty_pauses_between_bursts() {
        let m = DelayModel::Bursty {
            burst: 4,
            within: SimDuration::from_micros(5),
            pause: SimDuration::from_millis(100),
        };
        let mut r = rng();
        let gaps: Vec<SimDuration> = (0..9).map(|i| m.gap(i, &mut r)).collect();
        // Pauses before tuples 4 and 8.
        for (i, g) in gaps.iter().enumerate() {
            if i == 4 || i == 8 {
                assert_eq!(*g, SimDuration::from_millis(100));
            } else {
                assert_eq!(*g, SimDuration::from_micros(5));
            }
        }
    }

    #[test]
    fn mean_gap_matches_simulated_average() {
        let models = [
            DelayModel::Initial {
                initial: SimDuration::from_millis(10),
                mean: SimDuration::from_micros(20),
            },
            DelayModel::Bursty {
                burst: 10,
                within: SimDuration::from_micros(2),
                pause: SimDuration::from_millis(1),
            },
        ];
        for m in models {
            let n = 10_000u64;
            // For deterministic parts, the analytic mean must equal the
            // realized mean exactly (Uniform is statistical, tested above).
            if let DelayModel::Bursty { .. } = m {
                let mut r = rng();
                let total: u64 = (0..n).map(|i| m.gap(i, &mut r).as_nanos()).sum();
                assert_eq!(total / n, m.mean_gap(n).as_nanos());
            }
            assert_eq!(m.expected_total(n).as_nanos(), m.mean_gap(n).as_nanos() * n);
        }
    }

    #[test]
    fn zero_tuples_zero_expectation() {
        let m = DelayModel::Constant {
            w: SimDuration::from_micros(20),
        };
        assert_eq!(m.mean_gap(0), SimDuration::ZERO);
        assert_eq!(m.expected_total(0), SimDuration::ZERO);
    }
}
