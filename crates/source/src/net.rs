//! The mediator wire protocol: a length-prefixed binary frame codec.
//!
//! §2.1's window protocol made real: the mediator and its wrappers — and
//! the clients submitting queries to the mediator — exchange [`Frame`]s
//! over TCP. Every frame is `u32` big-endian body length followed by the
//! body (`u8` tag + fields); strings are `u32` length + UTF-8; integers
//! are big-endian. The codec is `std`-only and panic-free: malformed,
//! truncated or oversized input decodes to a typed [`FrameError`].
//!
//! Wrapper-facing frames (the paper's window protocol):
//!
//! | frame           | direction          | meaning                               |
//! |-----------------|--------------------|---------------------------------------|
//! | [`Frame::Open`] | mediator → wrapper | subscribe to a relation with a window |
//! | [`Frame::TupleBatch`] | wrapper → mediator | one or more result tuples       |
//! | [`Frame::WindowGrant`] | mediator → wrapper | return consumed window credits |
//! | [`Frame::Eof`]  | wrapper → mediator | all tuples delivered                  |
//! | [`Frame::Error`]| either             | abort with a reason                   |
//!
//! Client-facing frames (query submission):
//!
//! | frame               | direction          | meaning                          |
//! |---------------------|--------------------|----------------------------------|
//! | [`Frame::Submit`]   | client → mediator  | run this JSON workload spec      |
//! | [`Frame::Accepted`] | mediator → client  | session admitted, memory granted |
//! | [`Frame::Queued`]   | mediator → client  | backlogged at this position      |
//! | [`Frame::Rejected`] | mediator → client  | refused (overload / bad spec)    |
//! | [`Frame::Trace`]    | mediator → client  | one JSON engine-event line       |
//! | [`Frame::Done`]     | mediator → client  | final metrics, session over      |
//! | [`Frame::Invalidate`] | client → mediator | drop cached scans (refresh)     |
//! | [`Frame::Invalidated`] | mediator → client | how much the invalidate freed  |
//!
//! Freshness frames (change tracking for the refresh scheduler):
//!
//! | frame                  | direction          | meaning                       |
//! |------------------------|--------------------|-------------------------------|
//! | [`Frame::StatRequest`] | mediator → wrapper | report relation change state  |
//! | [`Frame::StatReply`]   | wrapper → mediator | one [`RelStat`] per relation  |

use std::fmt;
use std::io::{ErrorKind, Read, Write};

use dqs_relop::RelId;
use dqs_sim::SimDuration;

use crate::delay::DelayModel;

/// Hard ceiling on a frame body; a decoder that reads the length prefix
/// refuses anything larger before allocating.
pub const MAX_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Mediator → wrapper: serve `total` tuples of `rel`, keeping at most
    /// `window` unacknowledged tuples in flight. The delay model and the
    /// seeded stream name make the remote wrapper's pacing reproduce the
    /// in-process [`crate::ThreadedWrapper`] exactly.
    Open {
        /// Relation id in the mediator's catalog (also keys the tuples).
        rel: RelId,
        /// Tuples to deliver.
        total: u64,
        /// Flow-control window in tuples.
        window: u32,
        /// Master seed for the wrapper's delay stream.
        seed: u64,
        /// Seed-splitter stream label (e.g. `wrapper:orders`).
        stream: String,
        /// Delivery pacing.
        delay: DelayModel,
        /// First tuple index to deliver (0 = a fresh scan). Because tuple
        /// payloads are a pure function of `(rel, index, seed)`, a
        /// failed-over scan resumes on a replica at the next undelivered
        /// index instead of re-fetching from the start.
        resume_from: u64,
    },
    /// Wrapper → mediator: result tuples, identified by their synthetic
    /// join keys (the receiver reconstructs `Tuple { key, origin: rel }`).
    TupleBatch {
        /// The producing relation.
        rel: RelId,
        /// Synthetic join keys, in delivery order.
        keys: Vec<u64>,
    },
    /// Mediator → wrapper: the consumer drained `credits` tuples; the
    /// wrapper may ship that many more.
    WindowGrant {
        /// The relation being granted.
        rel: RelId,
        /// Window credits returned.
        credits: u32,
    },
    /// Wrapper → mediator: every tuple of `rel` has been delivered.
    Eof {
        /// The finished relation.
        rel: RelId,
    },
    /// Either direction: abort with a machine code and human reason.
    Error {
        /// Machine-readable error code.
        code: u16,
        /// Human-readable reason.
        message: String,
    },
    /// Client → mediator: run this workload.
    Submit {
        /// Strategy name (`seq` | `ma` | `scr` | `dse`).
        strategy: String,
        /// Stream JSON engine-event trace lines back as [`Frame::Trace`].
        trace: bool,
        /// Bypass the mediator's result cache: neither serve this session
        /// from cached scans nor record its scans.
        no_cache: bool,
        /// Optional seed override (wins over the spec's `config.seed`).
        seed: Option<u64>,
        /// The JSON workload spec (the `examples/specs/` format).
        spec_json: String,
    },
    /// Mediator → client: the session was admitted and is running.
    Accepted {
        /// Server-assigned session id.
        session: u64,
        /// The memory partition this session runs under, in bytes.
        memory_bytes: u64,
    },
    /// Mediator → client: all execution slots busy; waiting in the backlog.
    Queued {
        /// Position in the backlog (0 = next to run).
        position: u32,
    },
    /// Mediator → client: the submission was refused.
    Rejected {
        /// Why (bad spec, overload, wrapper unreachable).
        reason: String,
    },
    /// Mediator → client: one JSON engine-event line (see
    /// `dqs_exec::observe::JsonLinesSink`).
    Trace {
        /// The JSON object, without trailing newline.
        line: String,
    },
    /// Mediator → client: the query finished; metrics as a JSON object.
    Done {
        /// Flat JSON rendering of the run metrics.
        metrics_json: String,
    },
    /// Client → mediator: drop cached scans so the next session re-fetches
    /// fresh data (the refresh lever of the cache subsystem).
    Invalidate {
        /// Only this relation's entries, or every relation when `None`.
        rel: Option<RelId>,
        /// Only entries recorded under this *logical* wrapper id (the
        /// replica-group id, not a pinned endpoint address), or every
        /// wrapper when `None`.
        wrapper: Option<String>,
    },
    /// Mediator → client: what an [`Frame::Invalidate`] removed.
    Invalidated {
        /// Entries dropped.
        entries: u64,
        /// Bytes released (payload + accounting overhead).
        bytes: u64,
    },
    /// Mediator → wrapper: report change-tracking state for one relation
    /// (or every registered relation when `rel` is `None`).
    StatRequest {
        /// Restrict the reply to this relation.
        rel: Option<RelId>,
    },
    /// Wrapper → mediator: one [`RelStat`] per registered relation. A
    /// relation the wrapper has never served (or been asked about) is
    /// simply absent.
    StatReply {
        /// Change-tracking state, in ascending relation order.
        stats: Vec<RelStat>,
    },
}

/// Per-relation change-tracking state, as reported by a wrapper in
/// [`Frame::StatReply`].
///
/// `version` is a monotonic change counter bumped by every mutation.
/// `rewrite_version` is the version of the *last non-append* mutation: a
/// cached scan captured at version `v` still has a valid prefix iff
/// `rewrite_version <= v`, in which case a refresh only needs the tail
/// `[cached_len, total)`; otherwise the prefix itself may have changed
/// and a full re-scan is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelStat {
    /// The relation this row describes.
    pub rel: RelId,
    /// Monotonic change counter (0 = never mutated since registration).
    pub version: u64,
    /// Current total tuple count.
    pub total: u64,
    /// Version of the last rewrite/shrink (0 = insert-only history).
    pub rewrite_version: u64,
}

/// Why a frame could not be decoded (or read).
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed mid-frame.
    Io {
        /// The I/O error kind (distinguishes timeouts from disconnects).
        kind: ErrorKind,
        /// The transport's message.
        detail: String,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// Declared body length.
        len: usize,
        /// The ceiling it exceeded.
        max: usize,
    },
    /// The body ended before the field being decoded.
    Truncated {
        /// Which field was being decoded.
        field: &'static str,
    },
    /// The tag byte names no known frame.
    UnknownTag(u8),
    /// A field decoded but its value is invalid.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The body is longer than its frame's fields.
    TrailingBytes {
        /// Unconsumed bytes after the last field.
        extra: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io { kind, detail } => write!(f, "i/o error ({kind:?}): {detail}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max} byte cap")
            }
            FrameError::Truncated { field } => write!(f, "frame truncated decoding {field}"),
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::Malformed { detail } => write!(f, "malformed frame: {detail}"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame body")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True when this error is a read timeout (no bytes within the
    /// socket's read-timeout window) rather than a peer failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io {
                kind: ErrorKind::WouldBlock | ErrorKind::TimedOut,
                ..
            }
        )
    }

    fn io(e: std::io::Error) -> FrameError {
        FrameError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

// --- frame tags -------------------------------------------------------------

const TAG_OPEN: u8 = 1;
const TAG_TUPLE_BATCH: u8 = 2;
const TAG_WINDOW_GRANT: u8 = 3;
const TAG_EOF: u8 = 4;
const TAG_ERROR: u8 = 5;
const TAG_SUBMIT: u8 = 6;
const TAG_ACCEPTED: u8 = 7;
const TAG_QUEUED: u8 = 8;
const TAG_REJECTED: u8 = 9;
const TAG_TRACE: u8 = 10;
const TAG_DONE: u8 = 11;
const TAG_INVALIDATE: u8 = 12;
const TAG_INVALIDATED: u8 = 13;
const TAG_STAT_REQUEST: u8 = 14;
const TAG_STAT_REPLY: u8 = 15;

/// Encoded size of one [`RelStat`] row (u16 rel + three u64s).
const REL_STAT_BYTES: usize = 2 + 8 + 8 + 8;

// --- encoding ---------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_delay(buf: &mut Vec<u8>, d: &DelayModel) {
    match d {
        DelayModel::Constant { w } => {
            buf.push(0);
            put_u64(buf, w.as_nanos());
        }
        DelayModel::Uniform { mean } => {
            buf.push(1);
            put_u64(buf, mean.as_nanos());
        }
        DelayModel::Initial { initial, mean } => {
            buf.push(2);
            put_u64(buf, initial.as_nanos());
            put_u64(buf, mean.as_nanos());
        }
        DelayModel::Bursty {
            burst,
            within,
            pause,
        } => {
            buf.push(3);
            put_u64(buf, *burst);
            put_u64(buf, within.as_nanos());
            put_u64(buf, pause.as_nanos());
        }
    }
}

impl Frame {
    /// Encode the frame body (tag + fields), without the length prefix.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        match self {
            Frame::Open {
                rel,
                total,
                window,
                seed,
                stream,
                delay,
                resume_from,
            } => {
                b.push(TAG_OPEN);
                put_u16(&mut b, rel.0);
                put_u64(&mut b, *total);
                put_u32(&mut b, *window);
                put_u64(&mut b, *seed);
                put_str(&mut b, stream);
                put_delay(&mut b, delay);
                put_u64(&mut b, *resume_from);
            }
            Frame::TupleBatch { rel, keys } => {
                b.push(TAG_TUPLE_BATCH);
                put_u16(&mut b, rel.0);
                put_u32(&mut b, keys.len() as u32);
                for k in keys {
                    put_u64(&mut b, *k);
                }
            }
            Frame::WindowGrant { rel, credits } => {
                b.push(TAG_WINDOW_GRANT);
                put_u16(&mut b, rel.0);
                put_u32(&mut b, *credits);
            }
            Frame::Eof { rel } => {
                b.push(TAG_EOF);
                put_u16(&mut b, rel.0);
            }
            Frame::Error { code, message } => {
                b.push(TAG_ERROR);
                put_u16(&mut b, *code);
                put_str(&mut b, message);
            }
            Frame::Submit {
                strategy,
                trace,
                no_cache,
                seed,
                spec_json,
            } => {
                b.push(TAG_SUBMIT);
                put_str(&mut b, strategy);
                b.push(u8::from(*trace));
                b.push(u8::from(*no_cache));
                match seed {
                    Some(s) => {
                        b.push(1);
                        put_u64(&mut b, *s);
                    }
                    None => b.push(0),
                }
                put_str(&mut b, spec_json);
            }
            Frame::Accepted {
                session,
                memory_bytes,
            } => {
                b.push(TAG_ACCEPTED);
                put_u64(&mut b, *session);
                put_u64(&mut b, *memory_bytes);
            }
            Frame::Queued { position } => {
                b.push(TAG_QUEUED);
                put_u32(&mut b, *position);
            }
            Frame::Rejected { reason } => {
                b.push(TAG_REJECTED);
                put_str(&mut b, reason);
            }
            Frame::Trace { line } => {
                b.push(TAG_TRACE);
                put_str(&mut b, line);
            }
            Frame::Done { metrics_json } => {
                b.push(TAG_DONE);
                put_str(&mut b, metrics_json);
            }
            Frame::Invalidate { rel, wrapper } => {
                b.push(TAG_INVALIDATE);
                match rel {
                    Some(r) => {
                        b.push(1);
                        put_u16(&mut b, r.0);
                    }
                    None => b.push(0),
                }
                match wrapper {
                    Some(w) => {
                        b.push(1);
                        put_str(&mut b, w);
                    }
                    None => b.push(0),
                }
            }
            Frame::Invalidated { entries, bytes } => {
                b.push(TAG_INVALIDATED);
                put_u64(&mut b, *entries);
                put_u64(&mut b, *bytes);
            }
            Frame::StatRequest { rel } => {
                b.push(TAG_STAT_REQUEST);
                match rel {
                    Some(r) => {
                        b.push(1);
                        put_u16(&mut b, r.0);
                    }
                    None => b.push(0),
                }
            }
            Frame::StatReply { stats } => {
                b.push(TAG_STAT_REPLY);
                put_u32(&mut b, stats.len() as u32);
                for s in stats {
                    put_u16(&mut b, s.rel.0);
                    put_u64(&mut b, s.version);
                    put_u64(&mut b, s.total);
                    put_u64(&mut b, s.rewrite_version);
                }
            }
        }
        b
    }

    /// Encode the whole frame: length prefix + body.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decode a frame body (tag + fields, no length prefix). Rejects
    /// unknown tags, short bodies and trailing bytes with a typed error —
    /// never panics on adversarial input.
    pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let mut c = Cursor { b: body, pos: 0 };
        let tag = c.take_u8("tag")?;
        let frame = match tag {
            TAG_OPEN => Frame::Open {
                rel: RelId(c.take_u16("open.rel")?),
                total: c.take_u64("open.total")?,
                window: c.take_u32("open.window")?,
                seed: c.take_u64("open.seed")?,
                stream: c.take_str("open.stream")?,
                delay: c.take_delay()?,
                resume_from: c.take_u64("open.resume_from")?,
            },
            TAG_TUPLE_BATCH => {
                let rel = RelId(c.take_u16("batch.rel")?);
                let n = c.take_u32("batch.count")? as usize;
                // The count must be consistent with the bytes actually
                // present before any allocation happens.
                if c.remaining() != n * 8 {
                    return Err(FrameError::Malformed {
                        detail: format!(
                            "tuple batch claims {n} keys but carries {} bytes",
                            c.remaining()
                        ),
                    });
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(c.take_u64("batch.key")?);
                }
                Frame::TupleBatch { rel, keys }
            }
            TAG_WINDOW_GRANT => Frame::WindowGrant {
                rel: RelId(c.take_u16("grant.rel")?),
                credits: c.take_u32("grant.credits")?,
            },
            TAG_EOF => Frame::Eof {
                rel: RelId(c.take_u16("eof.rel")?),
            },
            TAG_ERROR => Frame::Error {
                code: c.take_u16("error.code")?,
                message: c.take_str("error.message")?,
            },
            TAG_SUBMIT => Frame::Submit {
                strategy: c.take_str("submit.strategy")?,
                trace: c.take_u8("submit.trace")? != 0,
                no_cache: c.take_u8("submit.no_cache")? != 0,
                seed: match c.take_u8("submit.seed_tag")? {
                    0 => None,
                    1 => Some(c.take_u64("submit.seed")?),
                    t => {
                        return Err(FrameError::Malformed {
                            detail: format!("submit.seed_tag must be 0|1, got {t}"),
                        })
                    }
                },
                spec_json: c.take_str("submit.spec")?,
            },
            TAG_ACCEPTED => Frame::Accepted {
                session: c.take_u64("accepted.session")?,
                memory_bytes: c.take_u64("accepted.memory")?,
            },
            TAG_QUEUED => Frame::Queued {
                position: c.take_u32("queued.position")?,
            },
            TAG_REJECTED => Frame::Rejected {
                reason: c.take_str("rejected.reason")?,
            },
            TAG_TRACE => Frame::Trace {
                line: c.take_str("trace.line")?,
            },
            TAG_DONE => Frame::Done {
                metrics_json: c.take_str("done.metrics")?,
            },
            TAG_INVALIDATE => Frame::Invalidate {
                rel: match c.take_u8("invalidate.rel_tag")? {
                    0 => None,
                    1 => Some(RelId(c.take_u16("invalidate.rel")?)),
                    t => {
                        return Err(FrameError::Malformed {
                            detail: format!("invalidate.rel_tag must be 0|1, got {t}"),
                        })
                    }
                },
                wrapper: match c.take_u8("invalidate.wrapper_tag")? {
                    0 => None,
                    1 => Some(c.take_str("invalidate.wrapper")?),
                    t => {
                        return Err(FrameError::Malformed {
                            detail: format!("invalidate.wrapper_tag must be 0|1, got {t}"),
                        })
                    }
                },
            },
            TAG_INVALIDATED => Frame::Invalidated {
                entries: c.take_u64("invalidated.entries")?,
                bytes: c.take_u64("invalidated.bytes")?,
            },
            TAG_STAT_REQUEST => Frame::StatRequest {
                rel: match c.take_u8("stat_request.rel_tag")? {
                    0 => None,
                    1 => Some(RelId(c.take_u16("stat_request.rel")?)),
                    t => {
                        return Err(FrameError::Malformed {
                            detail: format!("stat_request.rel_tag must be 0|1, got {t}"),
                        })
                    }
                },
            },
            TAG_STAT_REPLY => {
                let n = c.take_u32("stat_reply.count")? as usize;
                // As with TupleBatch: the count must match the bytes
                // actually present before any allocation happens.
                if c.remaining() != n * REL_STAT_BYTES {
                    return Err(FrameError::Malformed {
                        detail: format!(
                            "stat reply claims {n} rows but carries {} bytes",
                            c.remaining()
                        ),
                    });
                }
                let mut stats = Vec::with_capacity(n);
                for _ in 0..n {
                    stats.push(RelStat {
                        rel: RelId(c.take_u16("stat_reply.rel")?),
                        version: c.take_u64("stat_reply.version")?,
                        total: c.take_u64("stat_reply.total")?,
                        rewrite_version: c.take_u64("stat_reply.rewrite_version")?,
                    });
                }
                Frame::StatReply { stats }
            }
            other => return Err(FrameError::UnknownTag(other)),
        };
        if c.remaining() != 0 {
            return Err(FrameError::TrailingBytes {
                extra: c.remaining(),
            });
        }
        Ok(frame)
    }
}

// --- decoding cursor --------------------------------------------------------

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&[u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated { field });
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u8(&mut self, field: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, field)?[0])
    }

    fn take_u16(&mut self, field: &'static str) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2, field)?.try_into().unwrap()))
    }

    fn take_u32(&mut self, field: &'static str) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4, field)?.try_into().unwrap()))
    }

    fn take_u64(&mut self, field: &'static str) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    fn take_str(&mut self, field: &'static str) -> Result<String, FrameError> {
        let len = self.take_u32(field)? as usize;
        if len > self.remaining() {
            return Err(FrameError::Truncated { field });
        }
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed {
            detail: format!("{field}: invalid UTF-8"),
        })
    }

    fn take_delay(&mut self) -> Result<DelayModel, FrameError> {
        let ns = SimDuration::from_nanos;
        match self.take_u8("delay.tag")? {
            0 => Ok(DelayModel::Constant {
                w: ns(self.take_u64("delay.w")?),
            }),
            1 => Ok(DelayModel::Uniform {
                mean: ns(self.take_u64("delay.mean")?),
            }),
            2 => Ok(DelayModel::Initial {
                initial: ns(self.take_u64("delay.initial")?),
                mean: ns(self.take_u64("delay.mean")?),
            }),
            3 => Ok(DelayModel::Bursty {
                burst: self.take_u64("delay.burst")?,
                within: ns(self.take_u64("delay.within")?),
                pause: ns(self.take_u64("delay.pause")?),
            }),
            t => Err(FrameError::Malformed {
                detail: format!("unknown delay tag {t}"),
            }),
        }
    }
}

// --- stream I/O -------------------------------------------------------------

/// Write one frame to `w` (a single `write_all`, so concurrent writers
/// serializing on a lock interleave only whole frames).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), FrameError> {
    w.write_all(&frame.encode()).map_err(FrameError::io)
}

/// Read one frame from `r`. `Ok(None)` means the peer closed cleanly at a
/// frame boundary; EOF mid-frame, an oversized length prefix, a decode
/// failure or a read timeout are all errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
    let mut prefix = [0u8; 4];
    // Distinguish clean EOF (zero bytes) from mid-prefix truncation.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated {
                        field: "length prefix",
                    })
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            FrameError::Truncated { field: "body" }
        } else {
            FrameError::io(e)
        }
    })?;
    Frame::decode_body(&body).map(Some)
}

// --- incremental (non-blocking) I/O -----------------------------------------

/// Incremental frame decoder for non-blocking sockets: feed whatever
/// bytes arrived, then drain zero or more complete frames. Partial
/// prefixes and bodies are buffered across calls, so a reader never
/// blocks waiting for the rest of a frame.
///
/// The oversize check runs as soon as the four prefix bytes are present
/// — a hostile peer cannot make the decoder allocate more than
/// [`MAX_FRAME_BYTES`] no matter how it fragments the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by drained frames.
    head: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Try to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed; errors (oversize, malformed) are sticky in the
    /// sense that the caller should drop the connection — the stream
    /// position is no longer trustworthy.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.head..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::TooLarge {
                len,
                max: MAX_FRAME_BYTES,
            });
        }
        if avail.len() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let frame = Frame::decode_body(&avail[4..4 + len])?;
        self.head += 4 + len;
        self.compact();
        Ok(Some(frame))
    }

    /// Call at EOF: a clean close lands exactly on a frame boundary;
    /// leftover bytes mean the peer died mid-frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        if self.buffered() == 0 {
            Ok(())
        } else if self.buffered() < 4 {
            Err(FrameError::Truncated {
                field: "length prefix",
            })
        } else {
            Err(FrameError::Truncated { field: "body" })
        }
    }

    /// Reclaim consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.head > 4096 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

/// Did a [`WriteBuffer::flush`] drain everything, or stop at a full
/// socket buffer?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushStatus {
    /// Every queued byte went out; write interest can be dropped.
    Flushed,
    /// The socket said `WouldBlock` mid-write; the remainder is retained
    /// and the caller should wait for writability.
    Blocked,
}

/// Outbound byte queue with resumable partial writes: frames are staged
/// with [`WriteBuffer::push`], and [`WriteBuffer::flush`] writes as much
/// as the socket accepts, keeping the rest for the next writable event.
/// A short write therefore never blocks an I/O worker and never tears a
/// frame.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    head: usize,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Stage one encoded frame behind whatever is already queued.
    pub fn push(&mut self, frame: &Frame) {
        self.buf.extend_from_slice(&frame.encode());
    }

    /// Bytes staged but not yet accepted by the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Write queued bytes until the buffer empties or the socket blocks.
    /// `Interrupted` retries; `WouldBlock` returns
    /// [`FlushStatus::Blocked`] with the remainder retained; a zero-length
    /// write is reported as `WriteZero`.
    pub fn flush(&mut self, w: &mut impl Write) -> std::io::Result<FlushStatus> {
        while self.head < self.buf.len() {
            match w.write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.head += n;
                    if self.head == self.buf.len() {
                        self.buf.clear();
                        self.head = 0;
                    } else if self.head > 64 * 1024 && self.head * 2 >= self.buf.len() {
                        self.buf.drain(..self.head);
                        self.head = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(FlushStatus::Blocked),
                Err(e) => return Err(e),
            }
        }
        Ok(FlushStatus::Flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Open {
                rel: RelId(3),
                total: 10_000,
                window: 816,
                seed: 42,
                stream: "wrapper:orders".into(),
                delay: DelayModel::Bursty {
                    burst: 100,
                    within: SimDuration::from_micros(20),
                    pause: SimDuration::from_millis(50),
                },
                resume_from: 4_999,
            },
            Frame::TupleBatch {
                rel: RelId(1),
                keys: vec![7, u64::MAX, 0],
            },
            Frame::WindowGrant {
                rel: RelId(0),
                credits: 408,
            },
            Frame::Eof { rel: RelId(9) },
            Frame::Error {
                code: 2,
                message: "wrapper unreachable".into(),
            },
            Frame::Submit {
                strategy: "dse".into(),
                trace: true,
                no_cache: true,
                seed: Some(7),
                spec_json: "{\"relations\":[]}".into(),
            },
            Frame::Accepted {
                session: 1,
                memory_bytes: 32 << 20,
            },
            Frame::Queued { position: 2 },
            Frame::Rejected {
                reason: "backlog full".into(),
            },
            Frame::Trace {
                line: "{\"at_us\":0,\"type\":\"stall\"}".into(),
            },
            Frame::Done {
                metrics_json: "{\"output_tuples\":90000}".into(),
            },
            Frame::Invalidate {
                rel: None,
                wrapper: None,
            },
            Frame::Invalidate {
                rel: Some(RelId(4)),
                wrapper: Some("w0".into()),
            },
            Frame::Invalidated {
                entries: 3,
                bytes: 8_392,
            },
            Frame::StatRequest { rel: None },
            Frame::StatRequest {
                rel: Some(RelId(2)),
            },
            Frame::StatReply { stats: vec![] },
            Frame::StatReply {
                stats: vec![
                    RelStat {
                        rel: RelId(0),
                        version: 12,
                        total: 8_064,
                        rewrite_version: 0,
                    },
                    RelStat {
                        rel: RelId(1),
                        version: u64::MAX,
                        total: 0,
                        rewrite_version: u64::MAX,
                    },
                ],
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for f in samples() {
            let body = f.encode_body();
            assert_eq!(Frame::decode_body(&body).unwrap(), f, "{f:?}");
            // And through the stream path.
            let mut wire = Vec::new();
            write_frame(&mut wire, &f).unwrap();
            let mut r = wire.as_slice();
            assert_eq!(read_frame(&mut r).unwrap(), Some(f));
            assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after");
        }
    }

    /// Every wire tag — including the cache frames `Invalidate` /
    /// `Invalidated`, the freshness frames `StatRequest` / `StatReply`
    /// and the resume-capable `Open` — appears in `samples()`, so the
    /// roundtrip and truncation tests above exercise the full protocol,
    /// and a newly added tag without a sample fails here instead of
    /// silently going untested.
    #[test]
    fn samples_exercise_every_tag() {
        let mut seen: Vec<u8> = samples().iter().map(|f| f.encode_body()[0]).collect();
        seen.sort_unstable();
        seen.dedup();
        let all: Vec<u8> = (TAG_OPEN..=TAG_STAT_REPLY).collect();
        assert_eq!(seen, all, "samples() must cover every frame tag");
        // The resume offset is wire-visible: a resumed Open and a fresh
        // Open must not encode identically.
        let open = |resume_from| Frame::Open {
            rel: RelId(1),
            total: 10,
            window: 4,
            seed: 9,
            stream: "wrapper:x".into(),
            delay: DelayModel::Constant {
                w: SimDuration::from_micros(1),
            },
            resume_from,
        };
        assert_ne!(open(0).encode_body(), open(5).encode_body());
    }

    #[test]
    fn truncated_bodies_decode_to_typed_errors() {
        for f in samples() {
            let body = f.encode_body();
            for cut in 0..body.len() {
                let e = Frame::decode_body(&body[..cut])
                    .expect_err(&format!("{f:?} truncated at {cut} must not decode"));
                assert!(
                    matches!(
                        e,
                        FrameError::Truncated { .. } | FrameError::Malformed { .. }
                    ),
                    "{f:?} cut at {cut}: {e}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Frame::Eof { rel: RelId(1) }.encode_body();
        body.push(0xFF);
        assert!(matches!(
            Frame::decode_body(&body),
            Err(FrameError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut wire = Vec::new();
        put_u32(&mut wire, (MAX_FRAME_BYTES + 1) as u32);
        wire.extend_from_slice(&[0; 16]);
        let e = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(e, FrameError::TooLarge { .. }), "{e}");
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Frame::decode_body(&[200]),
            Err(FrameError::UnknownTag(200))
        ));
    }

    #[test]
    fn mid_frame_eof_is_not_clean() {
        let wire = Frame::Eof { rel: RelId(1) }.encode();
        for cut in 1..wire.len() {
            let e = read_frame(&mut &wire[..cut]).unwrap_err();
            assert!(matches!(e, FrameError::Truncated { .. }), "cut {cut}: {e}");
        }
    }

    #[test]
    fn tuple_batch_count_must_match_payload() {
        // Claims 1000 keys, carries one.
        let mut body = vec![TAG_TUPLE_BATCH];
        put_u16(&mut body, 0);
        put_u32(&mut body, 1000);
        put_u64(&mut body, 99);
        assert!(matches!(
            Frame::decode_body(&body),
            Err(FrameError::Malformed { .. })
        ));
    }

    #[test]
    fn stat_reply_count_must_match_payload() {
        // Claims 1000 rows, carries none.
        let mut body = vec![TAG_STAT_REPLY];
        put_u32(&mut body, 1000);
        assert!(matches!(
            Frame::decode_body(&body),
            Err(FrameError::Malformed { .. })
        ));
    }

    // --- property tests -----------------------------------------------------

    fn arb_string() -> impl Strategy<Value = String> {
        vec(0u32..128, 0..24).prop_map(|cs| {
            cs.into_iter()
                .filter_map(|c| char::from_u32(c + 32))
                .collect()
        })
    }

    fn arb_delay() -> impl Strategy<Value = DelayModel> {
        let ns = SimDuration::from_nanos;
        prop_oneof![
            (0u64..1 << 40).prop_map(move |w| DelayModel::Constant { w: ns(w) }),
            (0u64..1 << 40).prop_map(move |m| DelayModel::Uniform { mean: ns(m) }),
            (0u64..1 << 40, 0u64..1 << 40).prop_map(move |(i, m)| DelayModel::Initial {
                initial: ns(i),
                mean: ns(m)
            }),
            (1u64..1 << 20, 0u64..1 << 30, 0u64..1 << 30).prop_map(move |(b, w, p)| {
                DelayModel::Bursty {
                    burst: b,
                    within: ns(w),
                    pause: ns(p),
                }
            }),
        ]
    }

    fn arb_frame() -> impl Strategy<Value = Frame> {
        prop_oneof![
            (
                any::<u16>(),
                any::<u64>(),
                any::<u32>(),
                any::<u64>(),
                arb_string(),
                arb_delay(),
                any::<u64>()
            )
                .prop_map(|(r, t, w, s, stream, delay, resume_from)| Frame::Open {
                    rel: RelId(r),
                    total: t,
                    window: w,
                    seed: s,
                    stream,
                    delay,
                    resume_from,
                }),
            (any::<u16>(), vec(any::<u64>(), 0..64)).prop_map(|(r, keys)| Frame::TupleBatch {
                rel: RelId(r),
                keys
            }),
            (any::<u16>(), any::<u32>()).prop_map(|(r, c)| Frame::WindowGrant {
                rel: RelId(r),
                credits: c
            }),
            any::<u16>().prop_map(|r| Frame::Eof { rel: RelId(r) }),
            (any::<u16>(), arb_string()).prop_map(|(c, m)| Frame::Error {
                code: c,
                message: m
            }),
            (
                arb_string(),
                any::<bool>(),
                any::<bool>(),
                any::<u64>(),
                any::<bool>(),
                arb_string()
            )
                .prop_map(|(strategy, trace, no_cache, seed, has_seed, spec_json)| {
                    Frame::Submit {
                        strategy,
                        trace,
                        no_cache,
                        seed: has_seed.then_some(seed),
                        spec_json,
                    }
                }),
            (any::<u64>(), any::<u64>()).prop_map(|(s, m)| Frame::Accepted {
                session: s,
                memory_bytes: m
            }),
            any::<u32>().prop_map(|p| Frame::Queued { position: p }),
            arb_string().prop_map(|reason| Frame::Rejected { reason }),
            arb_string().prop_map(|line| Frame::Trace { line }),
            arb_string().prop_map(|metrics_json| Frame::Done { metrics_json }),
            (any::<bool>(), any::<u16>(), any::<bool>(), arb_string()).prop_map(
                |(some_rel, r, some_wrapper, w)| Frame::Invalidate {
                    rel: some_rel.then_some(RelId(r)),
                    wrapper: some_wrapper.then_some(w),
                }
            ),
            (any::<u64>(), any::<u64>())
                .prop_map(|(entries, bytes)| Frame::Invalidated { entries, bytes }),
            (any::<bool>(), any::<u16>()).prop_map(|(some, r)| Frame::StatRequest {
                rel: some.then_some(RelId(r)),
            }),
            vec(
                (any::<u16>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
                    |(r, version, total, rewrite_version)| RelStat {
                        rel: RelId(r),
                        version,
                        total,
                        rewrite_version,
                    }
                ),
                0..8
            )
            .prop_map(|stats| Frame::StatReply { stats }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// encode → decode is the identity, both body-wise and stream-wise.
        #[test]
        fn encode_decode_identity(f in arb_frame()) {
            prop_assert_eq!(&Frame::decode_body(&f.encode_body()).unwrap(), &f);
            let wire = f.encode();
            let decoded = read_frame(&mut wire.as_slice()).unwrap();
            prop_assert_eq!(decoded, Some(f));
        }

        /// Any prefix of a valid body fails with a typed error, not a panic.
        #[test]
        fn prefixes_never_panic(f in arb_frame(), frac in 0.0f64..1.0) {
            let body = f.encode_body();
            let cut = ((body.len() as f64) * frac) as usize;
            if cut < body.len() {
                prop_assert!(Frame::decode_body(&body[..cut]).is_err());
            }
        }

        /// Arbitrary bytes never panic the decoder.
        #[test]
        fn garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
            let _ = Frame::decode_body(&bytes);
            let _ = read_frame(&mut bytes.as_slice());
        }

        /// The incremental decoder recovers the exact frame sequence no
        /// matter how the stream is fragmented — byte-at-a-time, uneven
        /// chunks, or frames glued together in one read.
        #[test]
        fn incremental_decode_survives_any_fragmentation(
            frames in vec(arb_frame(), 1..6),
            chunk_seed in vec(1usize..64, 1..64),
        ) {
            let mut wire = Vec::new();
            for f in &frames {
                wire.extend_from_slice(&f.encode());
            }
            let mut dec = FrameDecoder::new();
            let mut out = Vec::new();
            let mut offset = 0;
            let mut i = 0;
            while offset < wire.len() {
                let take = chunk_seed[i % chunk_seed.len()].min(wire.len() - offset);
                i += 1;
                dec.feed(&wire[offset..offset + take]);
                offset += take;
                while let Some(f) = dec.next_frame().unwrap() {
                    out.push(f);
                }
            }
            prop_assert_eq!(&out, &frames);
            prop_assert!(dec.finish().is_ok(), "stream ended on a frame boundary");
            prop_assert_eq!(dec.buffered(), 0);
        }

        /// A write buffer flushed through a sink that accepts tiny
        /// amounts per call (and blocks in between) still delivers the
        /// byte-exact stream.
        #[test]
        fn write_buffer_resumes_short_writes_exactly(
            frames in vec(arb_frame(), 1..5),
            caps in vec(1usize..48, 1..32),
        ) {
            struct Dribble {
                caps: Vec<usize>,
                call: usize,
                sunk: Vec<u8>,
            }
            impl Write for Dribble {
                fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                    let call = self.call;
                    self.call += 1;
                    // Every third call pretends the socket buffer is full.
                    if call % 3 == 2 {
                        return Err(std::io::Error::from(ErrorKind::WouldBlock));
                    }
                    let cap = self.caps[call % self.caps.len()].min(buf.len());
                    self.sunk.extend_from_slice(&buf[..cap]);
                    Ok(cap)
                }
                fn flush(&mut self) -> std::io::Result<()> {
                    Ok(())
                }
            }
            let mut sink = Dribble { caps, call: 0, sunk: Vec::new() };
            let mut wb = WriteBuffer::new();
            let mut expected = Vec::new();
            for f in &frames {
                wb.push(f);
                expected.extend_from_slice(&f.encode());
            }
            let mut guard = 0;
            while wb.flush(&mut sink).unwrap() == FlushStatus::Blocked {
                guard += 1;
                prop_assert!(guard < 100_000, "flush must make progress");
            }
            prop_assert!(wb.is_empty());
            prop_assert_eq!(&sink.sunk, &expected);
        }
    }

    #[test]
    fn incremental_decoder_rejects_oversize_before_the_body_arrives() {
        let mut dec = FrameDecoder::new();
        let mut prefix = Vec::new();
        put_u32(&mut prefix, (MAX_FRAME_BYTES + 1) as u32);
        // Feed the prefix one byte at a time: only once all four bytes
        // are in can the decoder judge, and it must do so without ever
        // seeing (or allocating for) a body.
        for (i, b) in prefix.iter().enumerate() {
            dec.feed(&[*b]);
            let res = dec.next_frame();
            if i < 3 {
                assert!(matches!(res, Ok(None)), "byte {i}: prefix incomplete");
            } else {
                assert!(matches!(res, Err(FrameError::TooLarge { .. })));
            }
        }
    }

    #[test]
    fn incremental_decoder_reports_truncation_at_eof() {
        let f = &samples()[0];
        let wire = f.encode();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..2]);
        assert!(matches!(
            dec.finish(),
            Err(FrameError::Truncated {
                field: "length prefix"
            })
        ));
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..wire.len() - 1]);
        assert!(matches!(dec.next_frame(), Ok(None)));
        assert!(matches!(
            dec.finish(),
            Err(FrameError::Truncated { field: "body" })
        ));
    }
}
