//! The `TupleSource` abstraction — what the communication manager needs
//! from a wrapper, independent of *how* tuples come to exist.
//!
//! §2.1 treats wrappers as black boxes that stream result tuples to the
//! mediator. The simulated [`crate::Wrapper`] realizes that contract by
//! drawing inter-tuple gaps from a [`crate::DelayModel`]; the
//! [`crate::ThreadedWrapper`] realizes it with a real producer thread and
//! a bounded channel. The CM drives either through this trait and cannot
//! tell them apart.

use dqs_relop::{RelId, Tuple};
use dqs_sim::SimDuration;

/// A wrapper delivering one relation's tuples to the mediator.
///
/// Pull-paced sources (the simulator) report the gap before their next
/// tuple from [`TupleSource::next_gap`] and the caller schedules the
/// arrival; push-paced sources (threads, sockets) return `None` and the
/// driver learns of arrivals out-of-band, calling [`TupleSource::emit`]
/// only when a tuple is known to be ready.
pub trait TupleSource: std::fmt::Debug {
    /// The relation this source serves.
    fn rel(&self) -> RelId;

    /// Total tuples this source will deliver.
    fn total(&self) -> u64;

    /// Tuples delivered so far.
    fn produced(&self) -> u64;

    /// True when every tuple has been delivered.
    fn exhausted(&self) -> bool {
        self.produced() >= self.total()
    }

    /// Whether the window protocol has suspended this source.
    fn is_suspended(&self) -> bool;

    /// Suspend delivery (destination queue full).
    fn suspend(&mut self);

    /// Resume after the consumer drained the queue.
    fn resume(&mut self);

    /// Begin producing (sends the sub-query to the wrapper). Pull-paced
    /// sources need no setup; push-paced sources spawn their producer
    /// here, so construction stays side-effect free.
    fn start(&mut self) {}

    /// The gap before the *next* tuple. `None` when exhausted — or always,
    /// for push-paced sources whose arrivals are signalled out-of-band.
    fn next_gap(&mut self) -> Option<SimDuration>;

    /// Take delivery of the next tuple.
    ///
    /// # Panics
    /// Panics when exhausted.
    fn emit(&mut self) -> Tuple;
}

/// An owned, type-erased tuple source.
pub type BoxSource = Box<dyn TupleSource + Send>;
