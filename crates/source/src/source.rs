//! The `TupleSource` abstraction — what the communication manager needs
//! from a wrapper, independent of *how* tuples come to exist.
//!
//! §2.1 treats wrappers as black boxes that stream result tuples to the
//! mediator. The simulated [`crate::Wrapper`] realizes that contract by
//! drawing inter-tuple gaps from a [`crate::DelayModel`]; the
//! [`crate::ThreadedWrapper`] realizes it with a real producer thread and
//! a bounded channel. The CM drives either through this trait and cannot
//! tell them apart.

use std::fmt;

use dqs_relop::{RelId, Tuple};
use dqs_sim::SimDuration;

/// Why a push-paced source stopped delivering before its last tuple.
///
/// Threaded wrappers cannot fail (their producer is in-process); remote
/// wrappers can, in all the ways sockets do. The producer side reports the
/// failure out-of-band as a [`Notice::Fault`] so the engine can abort the
/// run with a typed reason instead of hanging on a queue that will never
/// fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The peer closed or reset the connection mid-stream.
    Disconnected {
        /// What the transport reported.
        detail: String,
    },
    /// No bytes arrived within the read timeout — the source went silent.
    Timeout {
        /// The timeout that elapsed, in milliseconds.
        millis: u64,
    },
    /// The peer spoke, but not the wrapper protocol.
    Protocol {
        /// What was wrong with the stream.
        detail: String,
    },
    /// Any other transport-level I/O failure.
    Io {
        /// What the transport reported.
        detail: String,
    },
}

impl SourceError {
    /// Stable snake_case discriminant name (used by JSON event sinks).
    pub fn kind(&self) -> &'static str {
        match self {
            SourceError::Disconnected { .. } => "disconnected",
            SourceError::Timeout { .. } => "timeout",
            SourceError::Protocol { .. } => "protocol",
            SourceError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Disconnected { detail } => write!(f, "peer disconnected: {detail}"),
            SourceError::Timeout { millis } => {
                write!(f, "no data within the {millis} ms read timeout")
            }
            SourceError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            SourceError::Io { detail } => write!(f, "transport error: {detail}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// What a push-paced source announces on the driver's notify channel.
///
/// Data always precedes its notice: by the time the engine sees
/// [`Notice::Arrival`] the matching tuple is waiting in the source's data
/// channel, so [`TupleSource::emit`] never blocks. A [`Notice::Fault`] is
/// terminal for its source — no further notices follow from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notice {
    /// A tuple from this wrapper is ready to be taken.
    Arrival(RelId),
    /// The source failed; the run cannot complete.
    Fault {
        /// The failed wrapper's relation.
        rel: RelId,
        /// What went wrong.
        error: SourceError,
    },
    /// A replica-backed source opened its scan on this endpoint.
    ReplicaPinned {
        /// The relation whose scan was pinned.
        rel: RelId,
        /// The chosen endpoint address.
        endpoint: String,
    },
    /// A replica-backed source lost its endpoint mid-scan and re-opened
    /// the scan elsewhere, resuming at the next undelivered tuple index.
    Failover {
        /// The relation whose scan moved.
        rel: RelId,
        /// The endpoint that failed.
        from: String,
        /// The endpoint the scan resumed on.
        to: String,
        /// First tuple index the new endpoint delivers.
        resume_from: u64,
    },
    /// An endpoint failed often enough to be put on cooldown. Informational
    /// — unlike [`Notice::Fault`], the scan itself may still complete on a
    /// peer replica.
    ReplicaDegraded {
        /// The relation whose source observed the failure.
        rel: RelId,
        /// The endpoint now on cooldown.
        endpoint: String,
        /// The failure that degraded it.
        error: SourceError,
    },
}

impl Notice {
    /// The relation this notice concerns.
    pub fn rel(&self) -> RelId {
        match self {
            Notice::Arrival(rel)
            | Notice::Fault { rel, .. }
            | Notice::ReplicaPinned { rel, .. }
            | Notice::Failover { rel, .. }
            | Notice::ReplicaDegraded { rel, .. } => *rel,
        }
    }
}

/// A wrapper delivering one relation's tuples to the mediator.
///
/// Pull-paced sources (the simulator) report the gap before their next
/// tuple from [`TupleSource::next_gap`] and the caller schedules the
/// arrival; push-paced sources (threads, sockets) return `None` and the
/// driver learns of arrivals out-of-band, calling [`TupleSource::emit`]
/// only when a tuple is known to be ready.
pub trait TupleSource: std::fmt::Debug {
    /// The relation this source serves.
    fn rel(&self) -> RelId;

    /// Total tuples this source will deliver.
    fn total(&self) -> u64;

    /// Tuples delivered so far.
    fn produced(&self) -> u64;

    /// True when every tuple has been delivered.
    fn exhausted(&self) -> bool {
        self.produced() >= self.total()
    }

    /// Whether the window protocol has suspended this source.
    fn is_suspended(&self) -> bool;

    /// Suspend delivery (destination queue full).
    fn suspend(&mut self);

    /// Resume after the consumer drained the queue.
    fn resume(&mut self);

    /// Begin producing (sends the sub-query to the wrapper). Pull-paced
    /// sources need no setup; push-paced sources spawn their producer
    /// here, so construction stays side-effect free.
    fn start(&mut self) {}

    /// The gap before the *next* tuple. `None` when exhausted — or always,
    /// for push-paced sources whose arrivals are signalled out-of-band.
    fn next_gap(&mut self) -> Option<SimDuration>;

    /// Take delivery of the next tuple.
    ///
    /// # Panics
    /// Panics when exhausted.
    fn emit(&mut self) -> Tuple;
}

/// An owned, type-erased tuple source.
pub type BoxSource = Box<dyn TupleSource + Send>;
