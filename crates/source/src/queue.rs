//! Bounded communication queues.
//!
//! §2.1: "the query engine ... creates a queue of a given size in order to
//! buffer the received tuples. ... If the relevant destination queue is
//! full, sub-query processing at the wrapper is suspended as it cannot send
//! more tuples, until tuples are consumed from that queue. This
//! communication protocol is a kind of 'window protocol'."

use std::collections::VecDeque;

use dqs_relop::Tuple;

/// A bounded FIFO of tuples between the communication manager and the
/// query processor.
#[derive(Debug)]
pub struct TupleQueue {
    buf: VecDeque<Tuple>,
    capacity: usize,
    enqueued: u64,
    dequeued: u64,
}

impl TupleQueue {
    /// A queue holding at most `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TupleQueue {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Configured capacity (the flow-control window).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Tuples currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when an arriving tuple would not fit.
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// Enqueue one tuple.
    ///
    /// # Panics
    /// Panics if full: the window protocol must have suspended the wrapper
    /// before this can happen; violating it is an engine bug.
    pub fn push(&mut self, t: Tuple) {
        assert!(
            !self.is_full(),
            "push into full queue — window protocol violated"
        );
        self.buf.push_back(t);
        self.enqueued += 1;
    }

    /// Dequeue up to `max` tuples.
    pub fn pop_batch(&mut self, max: usize) -> Vec<Tuple> {
        let n = max.min(self.buf.len());
        self.buf.drain(..n).collect()
    }

    /// Dequeue up to `max` tuples into `out` (appended), returning how
    /// many were moved — the allocation-free batch path.
    pub fn pop_batch_into(&mut self, max: usize, out: &mut Vec<Tuple>) -> usize {
        let n = max.min(self.buf.len());
        out.extend(self.buf.drain(..n));
        n
    }

    /// Total tuples ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total tuples ever dequeued.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Record `n` tuples as consumed (kept separate from `pop_batch` so the
    /// caller can account consumption at batch completion time).
    pub fn note_dequeued(&mut self, n: u64) {
        self.dequeued += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_relop::RelId;

    fn t(k: u64) -> Tuple {
        Tuple::new(k, RelId(0))
    }

    #[test]
    fn fifo_order() {
        let mut q = TupleQueue::new(10);
        q.push(t(1));
        q.push(t(2));
        q.push(t(3));
        let out = q.pop_batch(2);
        assert_eq!(out.iter().map(|x| x.key).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn full_detection() {
        let mut q = TupleQueue::new(2);
        q.push(t(1));
        assert!(!q.is_full());
        q.push(t(2));
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "window protocol violated")]
    fn overflow_panics() {
        let mut q = TupleQueue::new(1);
        q.push(t(1));
        q.push(t(2));
    }

    #[test]
    fn pop_more_than_available_clamps() {
        let mut q = TupleQueue::new(5);
        q.push(t(1));
        let out = q.pop_batch(10);
        assert_eq!(out.len(), 1);
        assert!(q.pop_batch(10).is_empty());
    }

    #[test]
    fn pop_batch_into_appends_and_reports_count() {
        let mut q = TupleQueue::new(5);
        q.push(t(1));
        q.push(t(2));
        q.push(t(3));
        let mut out = vec![t(9)];
        assert_eq!(q.pop_batch_into(2, &mut out), 2);
        assert_eq!(out.iter().map(|x| x.key).collect::<Vec<_>>(), vec![9, 1, 2]);
        assert_eq!(q.pop_batch_into(10, &mut out), 1);
        assert_eq!(q.pop_batch_into(10, &mut out), 0);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = TupleQueue::new(5);
        q.push(t(1));
        q.push(t(2));
        let _ = q.pop_batch(2);
        q.note_dequeued(2);
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.total_dequeued(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TupleQueue::new(0);
    }
}
