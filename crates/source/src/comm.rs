//! The communication manager (CM).
//!
//! §3.1: "The Communication Manager implements the communicating component
//! of the system. It receives data from the wrappers and makes it available
//! to the DQP ... by means of communication queues. Moreover, the CM is
//! responsible for computing an estimate of the delivery rate and signaling
//! any significant changes to the DQP."
//!
//! The CM is a passive state machine: the engine's event loop calls
//! [`CommManager::start`] once, [`CommManager::on_arrival`] per tuple-arrival
//! event, and [`CommManager::after_consume`] after the DQP drains a queue.
//! Returned timestamps tell the engine what to schedule next, keeping this
//! crate independent of the engine's event enum.
//!
//! Accounting: one message per page of tuples (8 KB / 40 B = 204), charged
//! `instr_per_message` (200 000 instructions, Table 1) of mediator CPU at
//! the first tuple of each message — so heavy delivery traffic genuinely
//! competes with query processing for the single CPU.

use dqs_relop::{RelId, Tuple};
use dqs_sim::{Ewma, SimDuration, SimParams, SimTime};

use crate::queue::TupleQueue;
use crate::source::{BoxSource, TupleSource};

/// Default EWMA weight for delivery-rate estimation.
pub const DEFAULT_RATE_ALPHA: f64 = 0.05;
/// Default relative deviation of the rate estimate from its last mark that
/// triggers a `RateChange` interruption.
pub const DEFAULT_RATE_CHANGE_THRESHOLD: f64 = 0.5;
/// Observations before a wrapper's first rate estimate is considered
/// stable enough to plan with (triggers the initial `RateChange`).
pub const RATE_WARMUP_OBSERVATIONS: u64 = 8;
/// Default communication queue capacity in tuples (the flow-control
/// window): four pages' worth.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4 * 204;

/// What the engine must do after an arrival was processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalOutcome {
    /// Mediator CPU instructions to charge (message receive costs).
    pub cpu_instr: u64,
    /// Schedule the wrapper's next arrival at this time (`None`: wrapper is
    /// exhausted or was suspended by the window protocol).
    pub next_arrival: Option<SimTime>,
    /// The wrapper delivered its last tuple.
    pub finished: bool,
    /// The delivery-rate estimate deviates significantly from the value the
    /// scheduler last planned with — raise a `RateChange` interruption.
    pub rate_change: bool,
}

/// Per-wrapper bookkeeping.
#[derive(Debug)]
struct Port {
    wrapper: BoxSource,
    queue: TupleQueue,
    rate: Ewma,
    last_arrival: Option<SimTime>,
    /// Rate estimate (ns) the scheduler last planned with.
    mark: Option<f64>,
    /// Suppress further RateChange signals until the next mark.
    rate_signaled: bool,
    /// The next arrival after a resume must not feed the rate estimator
    /// (the gap measures our consumption, not the wrapper's speed).
    skip_next_observation: bool,
}

/// The communication manager: wrappers, queues, and rate estimation.
#[derive(Debug)]
pub struct CommManager {
    ports: Vec<Port>,
    params: SimParams,
    rate_change_threshold: f64,
}

impl CommManager {
    /// Build a CM over `wrappers` with per-queue `capacity` tuples.
    pub fn new<S: TupleSource + Send + 'static>(
        wrappers: Vec<S>,
        capacity: usize,
        params: SimParams,
    ) -> Self {
        Self::from_boxed(
            wrappers
                .into_iter()
                .map(|w| Box::new(w) as BoxSource)
                .collect(),
            capacity,
            params,
        )
    }

    /// Build a CM over already type-erased sources (what a driver hands
    /// over when the source kind is chosen at runtime).
    pub fn from_boxed(wrappers: Vec<BoxSource>, capacity: usize, params: SimParams) -> Self {
        let ports = wrappers
            .into_iter()
            .map(|w| Port {
                wrapper: w,
                queue: TupleQueue::new(capacity),
                rate: Ewma::new(DEFAULT_RATE_ALPHA),
                last_arrival: None,
                mark: None,
                rate_signaled: false,
                skip_next_observation: false,
            })
            .collect();
        CommManager {
            ports,
            params,
            rate_change_threshold: DEFAULT_RATE_CHANGE_THRESHOLD,
        }
    }

    /// Override the RateChange sensitivity.
    pub fn set_rate_change_threshold(&mut self, t: f64) {
        assert!(t > 0.0, "threshold must be positive");
        self.rate_change_threshold = t;
    }

    fn port(&self, rel: RelId) -> &Port {
        &self.ports[rel.0 as usize]
    }

    fn port_mut(&mut self, rel: RelId) -> &mut Port {
        &mut self.ports[rel.0 as usize]
    }

    /// Number of wrappers.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True when no wrappers exist.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Kick off execution: sends each wrapper its sub-query and returns the
    /// first arrival times, plus the CPU instructions for the sub-query
    /// messages (one send per wrapper). Push-paced sources start producing
    /// here and contribute no pre-scheduled arrival.
    pub fn start(&mut self, now: SimTime) -> (Vec<(RelId, SimTime)>, u64) {
        let mut arrivals = Vec::new();
        for (i, port) in self.ports.iter_mut().enumerate() {
            port.wrapper.start();
            if let Some(gap) = port.wrapper.next_gap() {
                arrivals.push((RelId(i as u16), now + gap));
            }
        }
        let cpu = self.params.instr_per_message * self.ports.len() as u64;
        (arrivals, cpu)
    }

    /// Process one tuple arrival from `rel` at time `now`.
    pub fn on_arrival(&mut self, rel: RelId, now: SimTime) -> ArrivalOutcome {
        let tuples_per_message = self.params.tuples_per_message();
        let instr_per_message = self.params.instr_per_message;
        let threshold = self.rate_change_threshold;
        let port = self.port_mut(rel);

        // Rate estimation on the inter-arrival gap.
        let mut rate_change = false;
        if let Some(prev) = port.last_arrival {
            if port.skip_next_observation {
                port.skip_next_observation = false;
            } else {
                port.rate.observe(now - prev);
            }
            match (port.mark, port.rate.value()) {
                (Some(mark), Some(est)) if !port.rate_signaled => {
                    let dev = ((est.as_nanos() as f64) - mark).abs() / mark.max(1.0);
                    if dev > threshold {
                        rate_change = true;
                        port.rate_signaled = true;
                    }
                }
                // First usable estimate: tell the scheduler, which has been
                // planning blind for this wrapper so far.
                (None, Some(_))
                    if !port.rate_signaled
                        && port.rate.observations() >= RATE_WARMUP_OBSERVATIONS =>
                {
                    rate_change = true;
                    port.rate_signaled = true;
                }
                _ => {}
            }
        }
        port.last_arrival = Some(now);

        // Deliver into the queue.
        let t = port.wrapper.emit();
        port.queue.push(t);

        // Message accounting: first tuple of each page-sized message.
        let received = port.wrapper.produced();
        let mut cpu_instr = 0;
        if (received - 1) % tuples_per_message == 0 {
            cpu_instr += instr_per_message;
        }

        let finished = port.wrapper.exhausted();
        let next_arrival = if finished {
            None
        } else if port.queue.is_full() {
            // Window protocol: suspend the wrapper.
            port.wrapper.suspend();
            None
        } else {
            port.wrapper.next_gap().map(|g| now + g)
        };

        ArrivalOutcome {
            cpu_instr,
            next_arrival,
            finished,
            rate_change,
        }
    }

    /// Dequeue up to `max` tuples of `rel` for processing.
    pub fn consume(&mut self, rel: RelId, max: usize) -> Vec<Tuple> {
        let port = self.port_mut(rel);
        let batch = port.queue.pop_batch(max);
        port.queue.note_dequeued(batch.len() as u64);
        batch
    }

    /// Dequeue up to `max` tuples of `rel` into `out` (appended),
    /// returning how many were moved — the allocation-free batch path.
    pub fn consume_into(&mut self, rel: RelId, max: usize, out: &mut Vec<Tuple>) -> usize {
        let port = self.port_mut(rel);
        let n = port.queue.pop_batch_into(max, out);
        port.queue.note_dequeued(n as u64);
        n
    }

    /// After consumption, resume a suspended wrapper if the queue has room.
    /// Returns the resumed wrapper's next arrival time to schedule.
    pub fn after_consume(&mut self, rel: RelId, now: SimTime) -> Option<SimTime> {
        let port = self.port_mut(rel);
        if port.wrapper.is_suspended() && !port.queue.is_full() && !port.wrapper.exhausted() {
            port.wrapper.resume();
            port.skip_next_observation = true;
            port.wrapper.next_gap().map(|g| now + g)
        } else {
            None
        }
    }

    /// Tuples currently available in `rel`'s queue.
    pub fn available(&self, rel: RelId) -> usize {
        self.port(rel).queue.len()
    }

    /// True while the window protocol has `rel`'s wrapper suspended (its
    /// queue is full and delivery is paused).
    pub fn is_suspended(&self, rel: RelId) -> bool {
        self.port(rel).wrapper.is_suspended()
    }

    /// True when the wrapper delivered everything *and* the queue is empty.
    pub fn drained(&self, rel: RelId) -> bool {
        let p = self.port(rel);
        p.wrapper.exhausted() && p.queue.is_empty()
    }

    /// True when the wrapper delivered its last tuple (queue may still hold
    /// data).
    pub fn exhausted(&self, rel: RelId) -> bool {
        self.port(rel).wrapper.exhausted()
    }

    /// Tuples received from `rel` so far.
    pub fn received(&self, rel: RelId) -> u64 {
        self.port(rel).wrapper.produced()
    }

    /// Total tuples `rel` will deliver.
    pub fn total(&self, rel: RelId) -> u64 {
        self.port(rel).wrapper.total()
    }

    /// Live estimate of `rel`'s inter-tuple waiting time `w_p` (§4.3), if
    /// any arrivals were observed.
    pub fn estimated_gap(&self, rel: RelId) -> Option<SimDuration> {
        self.port(rel).rate.value()
    }

    /// Record the current rate estimates as the scheduler's planning
    /// baseline; RateChange fires when estimates drift from these marks.
    pub fn mark_rates(&mut self) {
        for port in &mut self.ports {
            port.mark = port.rate.value().map(|d| d.as_nanos() as f64);
            port.rate_signaled = false;
        }
    }

    /// The simulation parameters in force.
    pub fn params(&self) -> &SimParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::wrapper::Wrapper;
    use dqs_sim::SeedSplitter;

    fn cm(total: u64, capacity: usize, w_us: u64) -> CommManager {
        let w = Wrapper::new(
            RelId(0),
            total,
            DelayModel::Constant {
                w: SimDuration::from_micros(w_us),
            },
            SeedSplitter::new(5).stream("cm-test"),
        );
        CommManager::new(vec![w], capacity, SimParams::default())
    }

    fn drive_until_blocked(cm: &mut CommManager) -> (SimTime, u64) {
        let (arrivals, _) = cm.start(SimTime::ZERO);
        let mut next = arrivals[0].1;
        let mut count = 0;
        loop {
            let out = cm.on_arrival(RelId(0), next);
            count += 1;
            match out.next_arrival {
                Some(t) => next = t,
                None => return (next, count),
            }
        }
    }

    #[test]
    fn start_schedules_first_arrivals_and_charges_subquery_messages() {
        let mut c = cm(10, 100, 20);
        let (arrivals, cpu) = c.start(SimTime::ZERO);
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].1, SimTime::ZERO + SimDuration::from_micros(20));
        assert_eq!(cpu, SimParams::default().instr_per_message);
    }

    #[test]
    fn window_protocol_suspends_at_capacity() {
        let mut c = cm(1_000, 8, 20);
        let (_t, delivered) = drive_until_blocked(&mut c);
        assert_eq!(delivered, 8, "suspends exactly when the queue fills");
        assert_eq!(c.available(RelId(0)), 8);
        assert!(!c.exhausted(RelId(0)));
    }

    #[test]
    fn after_consume_resumes_suspended_wrapper() {
        let mut c = cm(1_000, 8, 20);
        let (t, _) = drive_until_blocked(&mut c);
        // Nothing resumes while the queue stays full.
        assert!(c.after_consume(RelId(0), t).is_none() || !c.port(RelId(0)).queue.is_full());
        let got = c.consume(RelId(0), 4);
        assert_eq!(got.len(), 4);
        let resumed = c.after_consume(RelId(0), t);
        assert_eq!(resumed, Some(t + SimDuration::from_micros(20)));
    }

    #[test]
    fn finished_wrapper_reports_and_drains() {
        let mut c = cm(3, 100, 20);
        let (arrivals, _) = c.start(SimTime::ZERO);
        let mut next = arrivals[0].1;
        let mut finished = false;
        for _ in 0..3 {
            let out = c.on_arrival(RelId(0), next);
            finished = out.finished;
            if let Some(t) = out.next_arrival {
                next = t;
            }
        }
        assert!(finished);
        assert!(c.exhausted(RelId(0)));
        assert!(!c.drained(RelId(0)));
        let _ = c.consume(RelId(0), 10);
        assert!(c.drained(RelId(0)));
    }

    #[test]
    fn message_cpu_charged_once_per_message() {
        let per_msg = SimParams::default().tuples_per_message();
        let mut c = cm(per_msg * 2, usize::MAX >> 1, 1);
        let (arrivals, _) = c.start(SimTime::ZERO);
        let mut next = arrivals[0].1;
        let mut charged = 0u64;
        loop {
            let out = c.on_arrival(RelId(0), next);
            charged += out.cpu_instr;
            match out.next_arrival {
                Some(t) => next = t,
                None => break,
            }
        }
        assert_eq!(charged, 2 * SimParams::default().instr_per_message);
    }

    #[test]
    fn rate_estimate_converges_to_gap() {
        let mut c = cm(500, 1_000, 50);
        drive_until_blocked(&mut c);
        let est = c.estimated_gap(RelId(0)).unwrap();
        let err = (est.as_nanos() as i64 - 50_000).abs();
        assert!(err < 2_000, "estimate {est} should be near 50µs");
    }

    #[test]
    fn rate_change_fires_on_slowdown_once() {
        let w = Wrapper::new(
            RelId(0),
            400,
            DelayModel::Bursty {
                burst: 200,
                within: SimDuration::from_micros(10),
                pause: SimDuration::from_micros(10),
            },
            SeedSplitter::new(5).stream("cm-rate"),
        );
        // Manually drive: 200 fast tuples, mark, then slow tuples.
        let mut c = CommManager::new(vec![w], 100_000, SimParams::default());
        let (arrivals, _) = c.start(SimTime::ZERO);
        let mut next = arrivals[0].1;
        for _ in 0..199 {
            let out = c.on_arrival(RelId(0), next);
            next = out.next_arrival.unwrap();
        }
        c.mark_rates();
        // Now feed arrivals 20x slower than the wrapper pace by lying about
        // time (legal: CM only sees timestamps).
        let mut signals = 0;
        for _ in 0..150 {
            next += SimDuration::from_micros(200);
            let out = c.on_arrival(RelId(0), next);
            if out.rate_change {
                signals += 1;
            }
        }
        assert_eq!(signals, 1, "RateChange fires exactly once per mark");
        // Re-marking re-arms the signal.
        c.mark_rates();
        let mut signals2 = 0;
        for _ in 0..40 {
            next += SimDuration::from_micros(4_000);
            let out = c.on_arrival(RelId(0), next);
            if out.rate_change {
                signals2 += 1;
            }
        }
        assert_eq!(signals2, 1);
    }

    #[test]
    fn consume_respects_fifo_and_counts() {
        let mut c = cm(10, 100, 5);
        let (arrivals, _) = c.start(SimTime::ZERO);
        let mut next = arrivals[0].1;
        for _ in 0..10 {
            if let Some(t) = c.on_arrival(RelId(0), next).next_arrival {
                next = t;
            }
        }
        let batch = c.consume(RelId(0), 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(c.available(RelId(0)), 6);
        assert_eq!(c.received(RelId(0)), 10);
        assert_eq!(c.total(RelId(0)), 10);
    }
}
