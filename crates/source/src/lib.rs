//! # dqs-source — simulated data sources and the communication manager
//!
//! The data-delivery side of the DQS reproduction:
//!
//! * [`delay::DelayModel`] — the paper's delay taxonomy (§1.2: initial,
//!   bursty, slow) plus the §5.1.3 uniform `[0, 2w]` methodology;
//! * [`source::TupleSource`] — the wrapper contract the CM drives, so the
//!   delivery substrate (simulated or real) is pluggable;
//! * [`wrapper::Wrapper`] — black-box remote sources producing synthetic
//!   tuples at the modelled pace;
//! * [`threaded::ThreadedWrapper`] — the same contract realized by a real
//!   producer thread sleeping actual gaps into a bounded channel;
//! * [`cached::ReplaySource`] / [`cached::RecordingSource`] — the cache
//!   adapters: instant replay of a completed scan, tee-on-miss recording
//!   of a live one (see `dqs-cache`);
//! * [`net::Frame`] — the length-prefixed binary wire protocol that carries
//!   the §2.1 window protocol (and query submission) over TCP;
//! * [`remote::RemoteWrapper`] — the same contract again, fed by a
//!   wrapper-server on the far side of a socket;
//! * [`failover::FailoverSource`] — the replica-aware remote source: opens
//!   on the best live endpoint of a `dqs_replica::ReplicaSet` and, on a
//!   mid-scan death, re-opens on a peer at the next undelivered index;
//! * [`queue::TupleQueue`] — the bounded communication queues of §2.1;
//! * [`comm::CommManager`] — receives tuples, enforces the window protocol,
//!   charges per-message CPU, estimates delivery rates (EWMA) and raises
//!   `RateChange` when they drift from the scheduler's planning marks.
//!
//! ```
//! use dqs_sim::SimDuration;
//! use dqs_source::DelayModel;
//!
//! // §5.1.3: per-tuple delays uniform in [0, 2w] average to w, so a
//! // 100 K-tuple relation at w = 20 µs takes about 2 s to retrieve.
//! let model = DelayModel::Uniform { mean: SimDuration::from_micros(20) };
//! assert_eq!(model.expected_total(100_000), SimDuration::from_secs(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cached;
pub mod comm;
pub mod delay;
pub mod failover;
pub mod net;
pub mod queue;
pub mod remote;
pub mod source;
pub mod threaded;
pub mod wrapper;

pub use cached::{RecordingSource, ReplaySource};
pub use comm::{
    ArrivalOutcome, CommManager, DEFAULT_QUEUE_CAPACITY, DEFAULT_RATE_ALPHA,
    DEFAULT_RATE_CHANGE_THRESHOLD,
};
pub use delay::DelayModel;
pub use failover::{FailoverOpts, FailoverSource};
pub use net::{read_frame, write_frame, Frame, FrameError, RelStat, MAX_FRAME_BYTES};
pub use queue::TupleQueue;
pub use remote::{RemoteOpen, RemoteWrapper};
pub use source::{BoxSource, Notice, SourceError, TupleSource};
pub use threaded::ThreadedWrapper;
pub use wrapper::Wrapper;
