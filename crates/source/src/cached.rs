//! Cache-aware sources: instant replay of cached scans, tee-on-miss
//! recording of live ones.
//!
//! The cache stores the complete, ordered key stream a wrapper delivered
//! (tuple keys are a pure function of `(relation, index, seed)` — see
//! `dqs_relop::synth_key` — so the keys *are* the scan). Two adapters
//! connect it to the [`TupleSource`] world:
//!
//! * [`ReplaySource`] serves a cached recording as a **pull-paced** source
//!   whose every gap is [`SimDuration::ZERO`]: the engine schedules each
//!   arrival as an immediately-due timer, so a warm relation streams at
//!   memory speed with zero window-protocol traffic and zero threads —
//!   no socket is even dialed for it.
//! * [`RecordingSource`] wraps any live source and tees each emitted key
//!   into a buffer, inserting into the [`SharedCache`] only at the moment
//!   the final tuple is delivered. An aborted session drops the recorder
//!   with a partial buffer that is never inserted, so the cache can only
//!   ever serve complete answers.

use std::sync::Arc;

use dqs_cache::{CacheKey, SharedCache};
use dqs_relop::{RelId, Tuple};
use dqs_sim::SimDuration;

use crate::source::{BoxSource, TupleSource};

/// A cached scan served back as a pull-paced source with zero gaps.
#[derive(Debug)]
pub struct ReplaySource {
    rel: RelId,
    keys: Arc<Vec<u64>>,
    produced: u64,
    suspended: bool,
}

impl ReplaySource {
    /// Replay `keys` (a complete recording) as relation `rel`.
    pub fn new(rel: RelId, keys: Arc<Vec<u64>>) -> ReplaySource {
        ReplaySource {
            rel,
            keys,
            produced: 0,
            suspended: false,
        }
    }
}

impl TupleSource for ReplaySource {
    fn rel(&self) -> RelId {
        self.rel
    }

    fn total(&self) -> u64 {
        self.keys.len() as u64
    }

    fn produced(&self) -> u64 {
        self.produced
    }

    fn is_suspended(&self) -> bool {
        self.suspended
    }

    fn suspend(&mut self) {
        self.suspended = true;
    }

    fn resume(&mut self) {
        self.suspended = false;
    }

    /// Pull-paced with no delay: every remaining tuple is already in
    /// memory, so the next arrival is due immediately.
    fn next_gap(&mut self) -> Option<SimDuration> {
        if self.exhausted() {
            None
        } else {
            Some(SimDuration::ZERO)
        }
    }

    fn emit(&mut self) -> Tuple {
        assert!(!self.exhausted(), "emit from exhausted replay");
        let t = Tuple::new(self.keys[self.produced as usize], self.rel);
        self.produced += 1;
        t
    }
}

/// A live source teeing its key stream into the cache.
///
/// Delegates the entire [`TupleSource`] contract to the wrapped source;
/// the only addition is that [`TupleSource::emit`] records each key and
/// the delivery of the final tuple inserts the completed recording. If
/// the recorder is dropped early (session aborted, source faulted), the
/// partial buffer dies with it.
#[derive(Debug)]
pub struct RecordingSource {
    inner: BoxSource,
    cache: Arc<SharedCache>,
    key: CacheKey,
    version: u64,
    recorded: Vec<u64>,
}

impl RecordingSource {
    /// Record `inner`'s stream under `key` in `cache` once it completes.
    pub fn new(inner: BoxSource, cache: Arc<SharedCache>, key: CacheKey) -> RecordingSource {
        RecordingSource::versioned(inner, cache, key, 0)
    }

    /// [`RecordingSource::new`], stamping the completed recording with
    /// the wrapper change-counter it was captured at (0 = unknown) so
    /// the refresh scheduler can judge its freshness later.
    pub fn versioned(
        inner: BoxSource,
        cache: Arc<SharedCache>,
        key: CacheKey,
        version: u64,
    ) -> RecordingSource {
        let capacity = inner.total() as usize;
        RecordingSource {
            inner,
            cache,
            key,
            version,
            recorded: Vec::with_capacity(capacity),
        }
    }
}

impl TupleSource for RecordingSource {
    fn rel(&self) -> RelId {
        self.inner.rel()
    }

    fn total(&self) -> u64 {
        self.inner.total()
    }

    fn produced(&self) -> u64 {
        self.inner.produced()
    }

    fn is_suspended(&self) -> bool {
        self.inner.is_suspended()
    }

    fn suspend(&mut self) {
        self.inner.suspend();
    }

    fn resume(&mut self) {
        self.inner.resume();
    }

    fn start(&mut self) {
        self.inner.start();
    }

    fn next_gap(&mut self) -> Option<SimDuration> {
        self.inner.next_gap()
    }

    fn emit(&mut self) -> Tuple {
        let t = self.inner.emit();
        self.recorded.push(t.key);
        if self.inner.exhausted() {
            // Complete scan: publish it. Insertion can still be refused
            // (oversize) — that only means the next session goes cold too.
            let keys = std::mem::take(&mut self.recorded);
            self.cache
                .insert_versioned(self.key.clone(), keys, self.version);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::wrapper::Wrapper;
    use dqs_cache::CacheConfig;
    use dqs_relop::synth_key;
    use dqs_sim::SeedSplitter;

    fn shared(budget: u64) -> Arc<SharedCache> {
        SharedCache::new(CacheConfig {
            budget_bytes: budget,
            ttl_ms: None,
        })
    }

    fn live(rel: RelId, total: u64) -> BoxSource {
        Box::new(Wrapper::new(
            rel,
            total,
            DelayModel::Constant {
                w: SimDuration::from_micros(1),
            },
            SeedSplitter::new(7).stream("cached-test"),
        ))
    }

    fn scan_key(rel: RelId, total: u64) -> CacheKey {
        CacheKey::for_scan("local", rel, total, 7, "cached-test")
    }

    #[test]
    fn recording_inserts_only_on_completion() {
        let cache = shared(1 << 20);
        let key = scan_key(RelId(1), 5);
        let mut rec = RecordingSource::new(live(RelId(1), 5), Arc::clone(&cache), key.clone());
        for i in 0..5 {
            assert!(
                cache.lookup(&key).is_none(),
                "nothing cached after {i} of 5 tuples"
            );
            let _ = rec.next_gap();
            let _ = rec.emit();
        }
        let got = cache.lookup(&key).expect("cached on completion");
        let expect: Vec<u64> = (0..5).map(|i| synth_key(RelId(1), i)).collect();
        assert_eq!(*got, expect);
    }

    #[test]
    fn aborted_recording_is_discarded() {
        let cache = shared(1 << 20);
        let key = scan_key(RelId(2), 10);
        {
            let mut rec = RecordingSource::new(live(RelId(2), 10), Arc::clone(&cache), key.clone());
            for _ in 0..9 {
                let _ = rec.emit();
            }
            // Dropped one tuple short of completion.
        }
        assert!(cache.lookup(&key).is_none(), "partial scan never served");
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn replay_reproduces_the_recorded_stream_with_zero_gaps() {
        let cache = shared(1 << 20);
        let key = scan_key(RelId(3), 8);
        let mut rec = RecordingSource::new(live(RelId(3), 8), Arc::clone(&cache), key.clone());
        let cold: Vec<Tuple> = (0..8).map(|_| rec.emit()).collect();

        let mut replay = ReplaySource::new(RelId(3), cache.lookup(&key).expect("hit"));
        assert_eq!(replay.total(), 8);
        let mut warm = Vec::new();
        while let Some(gap) = replay.next_gap() {
            assert_eq!(gap, SimDuration::ZERO, "replay never waits");
            warm.push(replay.emit());
        }
        assert_eq!(warm, cold, "bit-identical stream");
        assert!(replay.exhausted());
        assert_eq!(replay.next_gap(), None);
    }

    #[test]
    fn replay_respects_the_suspension_contract() {
        let mut replay = ReplaySource::new(RelId(0), Arc::new(vec![1, 2, 3]));
        assert!(!replay.is_suspended());
        replay.suspend();
        assert!(replay.is_suspended());
        replay.resume();
        assert!(!replay.is_suspended());
    }

    #[test]
    fn recording_delegates_the_window_protocol() {
        let cache = shared(1 << 20);
        let mut rec = RecordingSource::new(live(RelId(4), 3), cache, scan_key(RelId(4), 3));
        assert_eq!(rec.rel(), RelId(4));
        assert_eq!(rec.total(), 3);
        assert_eq!(rec.produced(), 0);
        assert!(
            rec.next_gap().is_some(),
            "pull-paced inner stays pull-paced"
        );
        rec.suspend();
        assert!(rec.is_suspended());
        rec.resume();
        assert!(!rec.is_suspended());
    }

    #[test]
    fn versioned_recording_stamps_the_entry() {
        let cache = shared(1 << 20);
        let key = scan_key(RelId(6), 3);
        let mut rec =
            RecordingSource::versioned(live(RelId(6), 3), Arc::clone(&cache), key.clone(), 9);
        for _ in 0..3 {
            let _ = rec.emit();
        }
        assert!(cache.contains(&key));
        assert_eq!(cache.entries_snapshot()[0].version, 9);
    }

    #[test]
    fn oversize_completion_is_refused_but_stream_still_flows() {
        // Budget too small for the scan: recording completes, insert is
        // refused, and the consumer still gets every tuple.
        let cache = shared(8);
        let key = scan_key(RelId(5), 4);
        let mut rec = RecordingSource::new(live(RelId(5), 4), Arc::clone(&cache), key.clone());
        let tuples: Vec<Tuple> = (0..4).map(|_| rec.emit()).collect();
        assert_eq!(tuples.len(), 4);
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.stats().oversize_rejections, 1);
    }
}
