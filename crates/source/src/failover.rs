//! The replica-aware remote source: rate-based endpoint selection at
//! `Open` time, transparent mid-scan failover after.
//!
//! [`FailoverSource`] speaks the same wire protocol as
//! [`crate::RemoteWrapper`], but against a [`ReplicaSet`] of
//! interchangeable endpoints instead of one address. At construction it
//! connects to the best live endpoint (exploration first, then highest
//! EWMA rate); a supervisor thread then owns the connection and, when the
//! endpoint dies mid-scan, re-opens the scan on a peer with
//! `resume_from` set to the next undelivered tuple index. Tuple payloads
//! are pure functions of `(rel, index, seed)` — the supervisor verifies
//! this by checking every received key against [`synth_key`] — so the
//! engine sees one uninterrupted, bit-identical stream.
//!
//! Observability rides the existing notify channel: a
//! [`Notice::ReplicaPinned`] when the scan opens, a
//! [`Notice::ReplicaDegraded`] each time an endpoint is put on cooldown,
//! a [`Notice::Failover`] each time the scan moves. Only when the retry
//! budget is exhausted with no live peer does the source raise the
//! terminal [`Notice::Fault`], aborting the run exactly as a plain
//! [`crate::RemoteWrapper`] would.

use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dqs_relop::{synth_key, RelId, Tuple};
use dqs_replica::ReplicaSet;
use dqs_sim::SimDuration;

use crate::net::{read_frame, write_frame, Frame};
use crate::remote::{frame_err, sock_err, RemoteOpen};
use crate::source::{Notice, SourceError, TupleSource};

/// Retry and pacing knobs for a [`FailoverSource`].
#[derive(Debug, Clone)]
pub struct FailoverOpts {
    /// Read timeout on the data socket; a silent endpoint surfaces as a
    /// timeout failure (and a failover target) after this long.
    pub read_timeout: Duration,
    /// Consecutive failed attach attempts before the scan gives up and
    /// raises a terminal fault.
    pub max_attempts: u32,
    /// Base backoff between failed attach attempts (scaled linearly by
    /// the failure streak, capped at one second).
    pub backoff: Duration,
}

impl Default for FailoverOpts {
    fn default() -> Self {
        FailoverOpts {
            read_timeout: Duration::from_secs(30),
            max_attempts: 5,
            backoff: Duration::from_millis(50),
        }
    }
}

/// The window-grant half of the connection, shared between the engine
/// thread (which consumes tuples and returns credits) and the supervisor
/// (which swaps in a fresh writer after a failover).
#[derive(Debug)]
struct GrantState {
    /// `None` while between endpoints (mid-failover): credits simply
    /// accumulate and are discarded at the swap, because a re-opened
    /// connection starts with a full window.
    writer: Option<TcpStream>,
    ungranted: u32,
}

/// A [`TupleSource`] served by whichever replica of a logical wrapper is
/// currently fastest and alive.
#[derive(Debug)]
pub struct FailoverSource {
    open: RemoteOpen,
    opts: FailoverOpts,
    replicas: Arc<ReplicaSet>,
    produced: u64,
    suspended: bool,
    pinned: String,
    grants: Arc<Mutex<GrantState>>,
    /// The pre-connected stream handed to the supervisor at `start()`.
    boot: Option<(TcpStream, usize, String)>,
    notify: Option<Sender<Notice>>,
    data_tx: Option<SyncSender<Tuple>>,
    data_rx: Receiver<Tuple>,
}

impl FailoverSource {
    /// Select the best live endpoint of `replicas`, connect to it, and
    /// prepare (but do not start) a source for `open`. Endpoints that
    /// refuse the connection are recorded as failures and the next best is
    /// tried; only when every endpoint has been tried or is on cooldown
    /// does this return an error.
    pub fn connect(
        replicas: Arc<ReplicaSet>,
        open: RemoteOpen,
        notify: Sender<Notice>,
        opts: FailoverOpts,
    ) -> Result<Self, SourceError> {
        assert!(open.window > 0, "window must be positive");
        let mut last_err = SourceError::Io {
            detail: format!("every endpoint of '{}' is on cooldown", replicas.id()),
        };
        for _ in 0..replicas.len() {
            let Some((idx, addr)) = replicas.select() else {
                break;
            };
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(opts.read_timeout))
                        .map_err(|e| sock_err(e, "set read timeout"))?;
                    let writer = stream
                        .try_clone()
                        .map_err(|e| sock_err(e, "clone socket"))?;
                    let (data_tx, data_rx) = sync_channel(open.window as usize);
                    let produced = open.resume_from;
                    return Ok(FailoverSource {
                        open,
                        opts,
                        replicas,
                        produced,
                        suspended: false,
                        pinned: addr.clone(),
                        grants: Arc::new(Mutex::new(GrantState {
                            writer: Some(writer),
                            ungranted: 0,
                        })),
                        boot: Some((stream, idx, addr)),
                        notify: Some(notify),
                        data_tx: Some(data_tx),
                        data_rx,
                    });
                }
                Err(e) => {
                    replicas.record_failure(idx);
                    last_err = sock_err(e, &format!("connect {addr}"));
                }
            }
        }
        Err(last_err)
    }

    /// The endpoint the scan opened on (for session pin records).
    pub fn pinned(&self) -> &str {
        &self.pinned
    }

    /// The supervisor thread: owns the data connection, re-attaching to a
    /// fresh replica whenever the current one fails, until the scan is
    /// complete, abandoned, or out of retry budget.
    #[allow(clippy::too_many_arguments)]
    fn supervise(
        replicas: Arc<ReplicaSet>,
        open: RemoteOpen,
        opts: FailoverOpts,
        tx: SyncSender<Tuple>,
        notify: Sender<Notice>,
        grants: Arc<Mutex<GrantState>>,
        boot: (TcpStream, usize, String),
    ) {
        let rel = open.rel;
        let mut next_index = open.resume_from;
        let mut current: Option<(TcpStream, usize, String)> = Some(boot);
        let mut prev_addr: Option<String> = None;
        let mut failures: u32 = 0;
        let mut last_err = SourceError::Io {
            detail: "no attach attempted".into(),
        };
        // Invoked on any endpoint-level failure: put the endpoint on
        // cooldown, announce the (first) degradation, and leave the grant
        // writer empty until a replacement is attached. Returns false when
        // the run has been abandoned.
        let degrade = |idx: usize,
                       addr: &str,
                       err: &SourceError,
                       grants: &Mutex<GrantState>,
                       notify: &Sender<Notice>| {
            if let Ok(mut g) = grants.lock() {
                g.writer = None;
            }
            if replicas.record_failure(idx) {
                return notify
                    .send(Notice::ReplicaDegraded {
                        rel,
                        endpoint: addr.to_string(),
                        error: err.clone(),
                    })
                    .is_ok();
            }
            true
        };
        loop {
            // --- attach: find a live endpoint and open (or resume) ------
            let (mut stream, idx, addr) = match current.take() {
                Some(boot) => boot,
                None => {
                    if failures >= opts.max_attempts {
                        notify
                            .send(Notice::Fault {
                                rel,
                                error: last_err,
                            })
                            .ok();
                        return;
                    }
                    if failures > 0 {
                        let nap = (opts.backoff * failures).min(Duration::from_secs(1));
                        thread::sleep(nap);
                    }
                    let Some((idx, addr)) = replicas.select() else {
                        failures += 1;
                        last_err = SourceError::Io {
                            detail: format!("every endpoint of '{}' is on cooldown", replicas.id()),
                        };
                        continue;
                    };
                    match TcpStream::connect(&addr) {
                        Ok(s) => {
                            s.set_nodelay(true).ok();
                            if s.set_read_timeout(Some(opts.read_timeout)).is_err()
                                || s.try_clone().is_err()
                            {
                                failures += 1;
                                last_err = SourceError::Io {
                                    detail: format!("socket setup failed for {addr}"),
                                };
                                if !degrade(idx, &addr, &last_err, &grants, &notify) {
                                    return;
                                }
                                continue;
                            }
                            (s, idx, addr)
                        }
                        Err(e) => {
                            failures += 1;
                            last_err = sock_err(e, &format!("connect {addr}"));
                            if !degrade(idx, &addr, &last_err, &grants, &notify) {
                                return;
                            }
                            continue;
                        }
                    }
                }
            };
            let open_frame = Frame::Open {
                rel,
                total: open.total,
                window: open.window,
                seed: open.seed,
                stream: open.stream.clone(),
                delay: open.delay.clone(),
                resume_from: next_index,
            };
            if let Err(e) = write_frame(&mut stream, &open_frame) {
                failures += 1;
                last_err = frame_err(e, opts.read_timeout);
                if !degrade(idx, &addr, &last_err, &grants, &notify) {
                    return;
                }
                continue;
            }
            // The connection is live: install its writer (a failover gets
            // a fresh full window, so pending credits are discarded) and
            // announce the move.
            if let Some(from) = prev_addr.take() {
                if let Ok(mut g) = grants.lock() {
                    g.writer = stream.try_clone().ok();
                    g.ungranted = 0;
                }
                if notify
                    .send(Notice::Failover {
                        rel,
                        from,
                        to: addr.clone(),
                        resume_from: next_index,
                    })
                    .is_err()
                {
                    return; // run abandoned
                }
            }

            // --- read: stream tuples until EOF or endpoint failure ------
            let mut last_batch = Instant::now();
            let err: SourceError = loop {
                match read_frame(&mut stream) {
                    Ok(Some(Frame::TupleBatch {
                        rel: batch_rel,
                        keys,
                    })) => {
                        if batch_rel != rel {
                            break SourceError::Protocol {
                                detail: format!(
                                    "batch for relation {} on a stream opened for {}",
                                    batch_rel.0, rel.0
                                ),
                            };
                        }
                        let batch_len = keys.len() as u64;
                        let mut bad = None;
                        for key in keys {
                            if next_index >= open.total {
                                bad = Some(format!(
                                    "endpoint sent more than the {} tuples opened",
                                    open.total
                                ));
                                break;
                            }
                            if key != synth_key(rel, next_index) {
                                bad = Some(format!(
                                    "endpoint sent a wrong key at index {next_index}"
                                ));
                                break;
                            }
                            // Data before notice: emit() must never block.
                            if tx.send(Tuple::new(key, rel)).is_err() {
                                return; // run abandoned
                            }
                            if notify.send(Notice::Arrival(rel)).is_err() {
                                return;
                            }
                            next_index += 1;
                        }
                        if let Some(detail) = bad {
                            break SourceError::Protocol { detail };
                        }
                        let elapsed = last_batch.elapsed();
                        last_batch = Instant::now();
                        replicas.record_batch(idx, batch_len, elapsed.as_nanos() as u64);
                        failures = 0;
                    }
                    Ok(Some(Frame::Eof { rel: eof_rel })) => {
                        if eof_rel == rel && next_index == open.total {
                            return; // scan complete
                        }
                        break SourceError::Protocol {
                            detail: format!(
                                "eof for relation {} after {next_index} of {} tuples",
                                eof_rel.0, open.total
                            ),
                        };
                    }
                    Ok(Some(Frame::Error { code, message })) => {
                        break SourceError::Protocol {
                            detail: format!("wrapper error {code}: {message}"),
                        };
                    }
                    Ok(Some(other)) => {
                        break SourceError::Protocol {
                            detail: format!("unexpected frame on data stream: {other:?}"),
                        };
                    }
                    Ok(None) => {
                        break SourceError::Disconnected {
                            detail: format!(
                                "endpoint closed after {next_index} of {} tuples",
                                open.total
                            ),
                        };
                    }
                    Err(e) => break frame_err(e, opts.read_timeout),
                }
            };
            // Endpoint failed mid-scan: degrade it and re-attach
            // immediately (backoff only applies to consecutive failures).
            failures += 1;
            if !degrade(idx, &addr, &err, &grants, &notify) {
                return;
            }
            last_err = err;
            prev_addr = Some(addr);
        }
    }
}

impl TupleSource for FailoverSource {
    fn rel(&self) -> RelId {
        self.open.rel
    }

    fn total(&self) -> u64 {
        self.open.total
    }

    fn produced(&self) -> u64 {
        self.produced
    }

    fn is_suspended(&self) -> bool {
        self.suspended
    }

    fn suspend(&mut self) {
        self.suspended = true;
    }

    fn resume(&mut self) {
        self.suspended = false;
    }

    fn start(&mut self) {
        let boot = self.boot.take().expect("started twice");
        let notify = self.notify.take().expect("started twice");
        let tx = self.data_tx.take().expect("started twice");
        if notify
            .send(Notice::ReplicaPinned {
                rel: self.open.rel,
                endpoint: self.pinned.clone(),
            })
            .is_err()
        {
            return;
        }
        let replicas = Arc::clone(&self.replicas);
        let open = self.open.clone();
        let opts = self.opts.clone();
        let grants = Arc::clone(&self.grants);
        thread::spawn(move || Self::supervise(replicas, open, opts, tx, notify, grants, boot));
    }

    /// Push-paced: arrivals are announced on the notify channel.
    fn next_gap(&mut self) -> Option<SimDuration> {
        None
    }

    fn emit(&mut self) -> Tuple {
        assert!(
            self.produced < self.open.total,
            "emit from exhausted wrapper"
        );
        // Data is sent before its notification, so this never blocks when
        // called in response to a notify.
        let t = self
            .data_rx
            .recv()
            .expect("supervisor died before delivering all tuples");
        self.produced += 1;
        let mut g = self.grants.lock().unwrap_or_else(|p| p.into_inner());
        g.ungranted += 1;
        if u64::from(g.ungranted) * 2 >= u64::from(self.open.window)
            || self.produced == self.open.total
        {
            let credits = g.ungranted;
            if let Some(w) = g.writer.as_mut() {
                let grant = Frame::WindowGrant {
                    rel: self.open.rel,
                    credits,
                };
                // A write failure is not fatal: the supervisor observes
                // the broken connection and fails over.
                if write_frame(w, &grant).is_ok() {
                    g.ungranted = 0;
                }
            }
            // With no writer (mid-failover) credits simply accumulate and
            // are discarded when the fresh connection is installed.
        }
        t
    }
}
