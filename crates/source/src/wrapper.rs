//! Simulated wrappers.
//!
//! §2.1: wrappers are black boxes that evaluate a sub-query against their
//! source and stream result tuples to the mediator. The simulation reduces a
//! wrapper to (i) a result cardinality, (ii) a [`DelayModel`] pacing tuple
//! production — which folds together source processing time, source load and
//! network time — and (iii) the window-protocol suspension state driven by
//! the communication manager.

use dqs_relop::{synth_key, RelId, Tuple};
use dqs_sim::SimDuration;
use rand_chacha::ChaCha8Rng;

use crate::delay::DelayModel;

/// One simulated remote wrapper.
#[derive(Debug)]
pub struct Wrapper {
    rel: RelId,
    total: u64,
    produced: u64,
    delay: DelayModel,
    rng: ChaCha8Rng,
    suspended: bool,
}

impl Wrapper {
    /// A wrapper that will deliver `total` tuples for relation `rel`.
    pub fn new(rel: RelId, total: u64, delay: DelayModel, rng: ChaCha8Rng) -> Self {
        Wrapper {
            rel,
            total,
            produced: 0,
            delay,
            rng,
            suspended: false,
        }
    }

    /// The relation this wrapper serves.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Tuples delivered so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Total tuples this wrapper will deliver.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when every tuple has been delivered.
    pub fn exhausted(&self) -> bool {
        self.produced >= self.total
    }

    /// Whether the window protocol has suspended this wrapper.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// Suspend (queue full).
    pub fn suspend(&mut self) {
        self.suspended = true;
    }

    /// Resume after the consumer drained the queue.
    pub fn resume(&mut self) {
        self.suspended = false;
    }

    /// The gap before the *next* tuple, consuming randomness; `None` when
    /// exhausted.
    pub fn next_gap(&mut self) -> Option<SimDuration> {
        if self.exhausted() {
            None
        } else {
            Some(self.delay.gap(self.produced, &mut self.rng))
        }
    }

    /// Emit the next tuple (deterministic key).
    ///
    /// # Panics
    /// Panics when exhausted.
    pub fn emit(&mut self) -> Tuple {
        assert!(!self.exhausted(), "emit from exhausted wrapper");
        let t = Tuple::new(synth_key(self.rel, self.produced), self.rel);
        self.produced += 1;
        t
    }

    /// The configured delay model (for analytics such as LWB).
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }
}

impl crate::source::TupleSource for Wrapper {
    fn rel(&self) -> RelId {
        Wrapper::rel(self)
    }

    fn total(&self) -> u64 {
        Wrapper::total(self)
    }

    fn produced(&self) -> u64 {
        Wrapper::produced(self)
    }

    fn is_suspended(&self) -> bool {
        Wrapper::is_suspended(self)
    }

    fn suspend(&mut self) {
        Wrapper::suspend(self)
    }

    fn resume(&mut self) {
        Wrapper::resume(self)
    }

    fn next_gap(&mut self) -> Option<SimDuration> {
        Wrapper::next_gap(self)
    }

    fn emit(&mut self) -> Tuple {
        Wrapper::emit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_sim::SeedSplitter;

    fn mk(total: u64) -> Wrapper {
        Wrapper::new(
            RelId(3),
            total,
            DelayModel::Constant {
                w: SimDuration::from_micros(20),
            },
            SeedSplitter::new(1).stream("wrapper-test"),
        )
    }

    #[test]
    fn produces_exactly_total_tuples() {
        let mut w = mk(5);
        let mut n = 0;
        while !w.exhausted() {
            assert!(w.next_gap().is_some());
            let _ = w.emit();
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(w.next_gap().is_none());
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let mut a = mk(3);
        let mut b = mk(3);
        let ka: Vec<u64> = (0..3).map(|_| a.emit().key).collect();
        let kb: Vec<u64> = (0..3).map(|_| b.emit().key).collect();
        assert_eq!(ka, kb);
        assert_eq!(ka.len(), 3);
        assert_ne!(ka[0], ka[1]);
    }

    #[test]
    fn suspension_state_toggles() {
        let mut w = mk(1);
        assert!(!w.is_suspended());
        w.suspend();
        assert!(w.is_suspended());
        w.resume();
        assert!(!w.is_suspended());
    }

    #[test]
    #[should_panic(expected = "exhausted wrapper")]
    fn emit_past_end_panics() {
        let mut w = mk(0);
        let _ = w.emit();
    }

    #[test]
    fn tuples_carry_origin() {
        let mut w = mk(1);
        assert_eq!(w.emit().origin, RelId(3));
    }
}
