//! Real-time wrappers: a producer thread per source.
//!
//! Where the simulated [`crate::Wrapper`] *describes* delivery delays, a
//! [`ThreadedWrapper`] *performs* them: a detached thread draws gaps from
//! the same [`DelayModel`] (same seeded stream, same deterministic keys),
//! actually sleeps them, and sends each tuple through a bounded
//! [`std::sync::mpsc::sync_channel`]. The channel bound is the transport
//! half of the paper's window protocol (§2.1): a producer that outruns the
//! consumer blocks in `send` exactly as a suspended wrapper would stop
//! shipping tuples.
//!
//! After each data send the thread posts a [`Notice::Arrival`] on a shared
//! *notify* channel; the real-time driver blocks on that channel and turns
//! each notification into an `Arrival` for the scheduler. Data is sent
//! before its notification, so by the time the CM calls
//! [`TupleSource::emit`] the matching tuple is guaranteed to be waiting
//! and the `recv` never blocks.

use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread;
use std::time::Duration;

use dqs_relop::{synth_key, RelId, Tuple};
use dqs_sim::SimDuration;
use rand_chacha::ChaCha8Rng;

use crate::delay::DelayModel;
use crate::source::{Notice, TupleSource};

/// A wrapper whose tuples are produced by a real thread with real sleeps.
#[derive(Debug)]
pub struct ThreadedWrapper {
    rel: RelId,
    total: u64,
    produced: u64,
    suspended: bool,
    delay: Option<(DelayModel, ChaCha8Rng)>,
    notify: Option<Sender<Notice>>,
    data_tx: Option<SyncSender<Tuple>>,
    data_rx: Receiver<Tuple>,
}

impl ThreadedWrapper {
    /// A wrapper that will deliver `total` tuples for `rel`, pacing them
    /// with `delay` driven by `rng`, holding at most `window` tuples in
    /// flight, and announcing each delivery on `notify`.
    ///
    /// Nothing runs until [`TupleSource::start`] spawns the producer.
    pub fn new(
        rel: RelId,
        total: u64,
        delay: DelayModel,
        rng: ChaCha8Rng,
        window: usize,
        notify: Sender<Notice>,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        let (data_tx, data_rx) = sync_channel(window);
        ThreadedWrapper {
            rel,
            total,
            produced: 0,
            suspended: false,
            delay: Some((delay, rng)),
            notify: Some(notify),
            data_tx: Some(data_tx),
            data_rx,
        }
    }
}

impl TupleSource for ThreadedWrapper {
    fn rel(&self) -> RelId {
        self.rel
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn produced(&self) -> u64 {
        self.produced
    }

    fn is_suspended(&self) -> bool {
        self.suspended
    }

    fn suspend(&mut self) {
        self.suspended = true;
    }

    fn resume(&mut self) {
        self.suspended = false;
    }

    fn start(&mut self) {
        let (delay, mut rng) = self.delay.take().expect("started twice");
        let notify = self.notify.take().expect("started twice");
        let tx = self.data_tx.take().expect("started twice");
        let (rel, total) = (self.rel, self.total);
        // Detached: the thread exits on its own when the run finishes
        // (all tuples sent) or is abandoned (receiver dropped → send errs).
        thread::spawn(move || {
            for i in 0..total {
                let gap: SimDuration = delay.gap(i, &mut rng);
                thread::sleep(Duration::from_nanos(gap.as_nanos()));
                let t = Tuple::new(synth_key(rel, i), rel);
                if tx.send(t).is_err() {
                    return;
                }
                if notify.send(Notice::Arrival(rel)).is_err() {
                    return;
                }
            }
        });
    }

    /// Push-paced: arrivals are announced on the notify channel, so there
    /// is never a gap to pre-schedule.
    fn next_gap(&mut self) -> Option<SimDuration> {
        None
    }

    fn emit(&mut self) -> Tuple {
        assert!(self.produced < self.total, "emit from exhausted wrapper");
        // Data is sent before its notification, so this never blocks when
        // called in response to a notify.
        let t = self
            .data_rx
            .recv()
            .expect("producer thread died before delivering all tuples");
        self.produced += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dqs_sim::SeedSplitter;
    use std::sync::mpsc::channel;

    fn mk(total: u64) -> (ThreadedWrapper, Receiver<Notice>) {
        let (ntx, nrx) = channel();
        let w = ThreadedWrapper::new(
            RelId(2),
            total,
            DelayModel::Constant {
                w: SimDuration::from_nanos(100),
            },
            SeedSplitter::new(9).stream("threaded-test"),
            8,
            ntx,
        );
        (w, nrx)
    }

    #[test]
    fn delivers_all_tuples_with_deterministic_keys() {
        let (mut w, nrx) = mk(20);
        w.start();
        let mut keys = Vec::new();
        for _ in 0..20 {
            let notice = nrx.recv().expect("notify");
            assert_eq!(notice, Notice::Arrival(RelId(2)));
            keys.push(w.emit().key);
        }
        assert!(w.exhausted());
        let expected: Vec<u64> = (0..20).map(|i| synth_key(RelId(2), i)).collect();
        assert_eq!(keys, expected, "same keys as the simulated wrapper");
    }

    #[test]
    fn push_paced_sources_report_no_gap() {
        let (mut w, _nrx) = mk(5);
        assert_eq!(w.next_gap(), None);
        assert_eq!(w.total(), 5);
        assert_eq!(w.produced(), 0);
    }

    #[test]
    fn bounded_channel_blocks_producer_not_consumer() {
        // Window of 8 with 100 tuples: the producer must block until we
        // drain; everything still arrives.
        let (mut w, nrx) = mk(100);
        w.start();
        let mut got = 0;
        while got < 100 {
            let _ = nrx.recv().expect("notify");
            let _ = w.emit();
            got += 1;
        }
        assert!(w.exhausted());
        assert!(nrx.try_recv().is_err(), "no stray notifications");
    }

    #[test]
    fn suspension_state_toggles() {
        let (mut w, _nrx) = mk(1);
        assert!(!w.is_suspended());
        w.suspend();
        assert!(w.is_suspended());
        w.resume();
        assert!(!w.is_suspended());
    }
}
