//! Optional execution tracing.
//!
//! The scheduler experiments in §5.3 of the paper were debugged by "checking
//! the execution traces"; this module gives the same capability. Tracing is
//! off by default and costs one branch per emit when disabled.

use std::fmt::Write as _;

use crate::time::SimTime;

/// Category of a trace record, used for filtering when rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A tuple (batch) arrived from a wrapper.
    Arrival,
    /// The query processor started/finished a batch.
    Batch,
    /// A scheduling phase ran.
    Plan,
    /// An interruption event was raised.
    Interrupt,
    /// Disk activity.
    Io,
    /// Anything else.
    Other,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time of the record.
    pub at: SimTime,
    /// Category.
    pub kind: TraceKind,
    /// Free-form detail line.
    pub detail: String,
}

/// Collecting sink for trace records.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A disabled trace (emits are dropped).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// An enabled trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled). `detail` is built lazily so
    /// disabled traces never pay for formatting.
    pub fn emit(&mut self, at: SimTime, kind: TraceKind, detail: impl FnOnce() -> String) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                kind,
                detail: detail(),
            });
        }
    }

    /// All records in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Render records (optionally filtered by kind) as a human-readable log.
    pub fn render(&self, filter: Option<TraceKind>) -> String {
        let mut out = String::new();
        for e in &self.events {
            if filter.map_or(true, |k| k == e.kind) {
                let _ = writeln!(out, "[{}] {:?}: {}", e.at, e.kind, e.detail);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn disabled_trace_drops_and_skips_formatting() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.emit(SimTime::ZERO, TraceKind::Other, || {
            called = true;
            "x".into()
        });
        assert!(!called, "formatter must not run when disabled");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.emit(SimTime::ZERO, TraceKind::Arrival, || "a".into());
        t.emit(
            SimTime::ZERO + SimDuration::from_micros(1),
            TraceKind::Batch,
            || "b".into(),
        );
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].detail, "a");
        assert_eq!(t.events()[1].kind, TraceKind::Batch);
    }

    #[test]
    fn render_filters_by_kind() {
        let mut t = Trace::enabled();
        t.emit(SimTime::ZERO, TraceKind::Arrival, || "a".into());
        t.emit(SimTime::ZERO, TraceKind::Io, || "w".into());
        let all = t.render(None);
        assert!(all.contains("a") && all.contains("w"));
        let io = t.render(Some(TraceKind::Io));
        assert!(!io.contains("Arrival") && io.contains("Io"));
    }
}
