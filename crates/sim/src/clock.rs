//! Clocks and timer scheduling for sans-io drivers.
//!
//! The scheduler core is written against *some* notion of "now" plus a set
//! of pending deadlines. In simulation, both come from the event queue
//! ([`crate::EventQueue`] advances virtual time as it pops). A real-time
//! driver instead reads a [`WallClock`] (monotonic `std::time::Instant`
//! mapped onto [`SimTime`] nanoseconds) and keeps its deadlines in a
//! [`TimerHeap`], turning them into actual waits.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

use crate::time::{SimDuration, SimTime};

/// A monotonic source of "now" expressed as [`SimTime`].
pub trait Clock {
    /// The current time.
    fn now(&self) -> SimTime;
}

/// Wall-clock time: nanoseconds elapsed since the clock was created,
/// reported through the same [`SimTime`] type the simulator uses so the
/// scheduler core cannot tell the difference.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock whose origin (`SimTime::ZERO`) is this instant.
    pub fn new() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        let ns = self.start.elapsed().as_nanos();
        SimTime::from_nanos(ns.min(u64::MAX as u128) as u64)
    }
}

/// Handle to a pending timer in a [`TimerHeap`], usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug, PartialEq, Eq)]
struct Deadline<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Deadline<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Deadline<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deadline queue for real-time drivers: like [`crate::EventQueue`] it
/// orders by `(time, insertion sequence)` and supports tombstone
/// cancellation, but it does **not** own "now" — deadlines may lie in the
/// past (they are then simply due immediately), because wall time keeps
/// moving while the scheduler works.
#[derive(Debug)]
pub struct TimerHeap<E> {
    heap: BinaryHeap<Reverse<Deadline<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E: Eq> TimerHeap<E> {
    /// An empty heap.
    pub fn new() -> TimerHeap<E> {
        TimerHeap {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Arm a timer for `at` (which may already have passed).
    pub fn arm(&mut self, at: SimTime, payload: E) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Deadline { at, seq, payload }));
        TimerId(seq)
    }

    /// Disarm a pending timer. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// The earliest live deadline, if any.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        self.drop_cancelled();
        self.heap.peek().map(|Reverse(d)| d.at)
    }

    /// Pop the earliest live timer regardless of the current time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.drop_cancelled();
        self.heap.pop().map(|Reverse(d)| {
            self.cancelled.remove(&d.seq);
            (d.at, d.payload)
        })
    }

    /// Pop the earliest live timer only if its deadline is at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.next_deadline() {
            Some(at) if at <= now => self.pop(),
            _ => None,
        }
    }

    /// True when no live timers remain.
    pub fn is_empty(&mut self) -> bool {
        self.next_deadline().is_none()
    }

    fn drop_cancelled(&mut self) {
        while let Some(Reverse(d)) = self.heap.peek() {
            if self.cancelled.remove(&d.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E: Eq> Default for TimerHeap<E> {
    fn default() -> Self {
        TimerHeap::new()
    }
}

/// How long from `now` until `deadline`, as a host [`std::time::Duration`]
/// (zero if the deadline already passed) — what a real-time driver sleeps.
pub fn until(now: SimTime, deadline: SimTime) -> std::time::Duration {
    let gap: SimDuration = deadline.saturating_since(now);
    std::time::Duration::from_nanos(gap.as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn timers_fire_in_deadline_order_with_fifo_ties() {
        let mut h = TimerHeap::new();
        h.arm(SimTime::from_nanos(20), "b");
        h.arm(SimTime::from_nanos(10), "a");
        h.arm(SimTime::from_nanos(20), "c");
        assert_eq!(h.pop().unwrap().1, "a");
        assert_eq!(h.pop().unwrap().1, "b");
        assert_eq!(h.pop().unwrap().1, "c");
        assert!(h.pop().is_none());
    }

    #[test]
    fn cancellation_tombstones() {
        let mut h = TimerHeap::new();
        let a = h.arm(SimTime::from_nanos(10), "a");
        h.arm(SimTime::from_nanos(20), "b");
        assert!(h.cancel(a));
        assert!(!h.cancel(a), "double cancel reports failure");
        assert_eq!(h.next_deadline(), Some(SimTime::from_nanos(20)));
        assert_eq!(h.pop().unwrap().1, "b");
        assert!(h.is_empty());
    }

    #[test]
    fn past_deadlines_are_due_immediately() {
        let mut h = TimerHeap::new();
        h.arm(SimTime::from_nanos(5), "late");
        let now = SimTime::from_nanos(100);
        assert_eq!(h.pop_due(now).unwrap().1, "late");
        assert!(h.pop_due(now).is_none());
    }

    #[test]
    fn pop_due_respects_future_deadlines() {
        let mut h = TimerHeap::new();
        h.arm(SimTime::from_nanos(50), "later");
        assert!(h.pop_due(SimTime::from_nanos(10)).is_none());
        assert_eq!(h.pop_due(SimTime::from_nanos(50)).unwrap().1, "later");
    }

    #[test]
    fn until_saturates_to_zero() {
        assert_eq!(
            until(SimTime::from_nanos(100), SimTime::from_nanos(40)),
            std::time::Duration::ZERO
        );
        assert_eq!(
            until(SimTime::from_nanos(40), SimTime::from_nanos(100)),
            std::time::Duration::from_nanos(60)
        );
    }
}
