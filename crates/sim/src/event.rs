//! The discrete-event core: a time-ordered queue of events with a virtual
//! clock, deterministic FIFO tie-breaking, and O(log n) cancellation.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// Order by (time, seq): events at the same instant fire in scheduling order,
// which makes runs reproducible regardless of heap internals.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// `E` is the event payload type chosen by the embedding engine. The queue
/// owns the virtual clock: [`EventQueue::pop`] advances it to the fired
/// event's timestamp, and scheduling in the past is a logic error.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Seqs scheduled and neither fired nor cancelled yet.
    live: HashSet<u64>,
    /// Seqs cancelled but still physically present in the heap.
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    fired: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            fired: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current virtual time: an event in the
    /// past indicates a causality bug in the embedding engine.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Reverse(Scheduled { at, seq, payload }));
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending (it will silently not fire); false if it already fired
    /// or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        // We cannot remove from the heap directly; tombstone instead. The
        // tombstone is dropped when the event surfaces in `pop`.
        self.cancelled.insert(id.0);
        true
    }

    /// Timestamp of the next event to fire, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Fire the next event: advances the clock and returns the payload.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.live.remove(&s.seq);
        self.now = s.at;
        self.fired += 1;
        Some((s.at, s.payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(s)) = self.heap.peek() {
            if self.cancelled.remove(&s.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn fires_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.schedule(t(10), ());
        q.schedule(t(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), t(10));
        q.pop();
        assert_eq!(q.now(), t(10));
        q.pop();
        assert_eq!(q.now(), t(25));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pending(), 1);
        assert_eq!(q.pop().map(|(_, p)| p), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.pop();
        // The id was consumed by firing; cancel must report false and must
        // not leave a tombstone behind.
        assert!(!q.cancel(a));
        q.schedule(t(20), "b");
        assert_eq!(q.pop().map(|(_, p)| p), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(20)));
    }
}
