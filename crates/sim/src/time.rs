//! Virtual time for the discrete-event simulation.
//!
//! All simulated time is kept in integer **nanoseconds** so that event
//! ordering is exact and runs are bit-reproducible. At the paper's CPU speed
//! of 100 MIPS (Table 1), one instruction is exactly 10 ns, so every cost in
//! the instruction-based cost model maps to a whole number of ticks.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event a simulation will ever schedule.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds since the origin, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics if `s` is negative or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s <= (u64::MAX as f64) / 1e9,
            "duration out of range: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a count, saturating on overflow.
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimTime difference");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration difference");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration difference");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 6_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_micros(7), SimDuration::from_nanos(7_000));
    }

    #[test]
    fn from_secs_f64_rounds_to_nanos() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    #[should_panic(expected = "duration out of range")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(
            vec![d, d, d].into_iter().sum::<SimDuration>(),
            SimDuration::from_micros(30)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
