//! # dqs-sim — deterministic discrete-event simulation kernel
//!
//! Foundation of the DQS reproduction: virtual time, a deterministic event
//! queue, FIFO resources (CPU/disk), reproducible per-component random
//! streams, EWMA rate estimation, and optional tracing.
//!
//! The paper (§5.1) evaluates its scheduler on a *simulated* platform whose
//! parameters are given in Table 1; [`params::SimParams`] encodes that table
//! verbatim and derives the timing quantities (instruction time, disk batch
//! time, network wire time) the upper layers charge against.
//!
//! Everything here is single-threaded and bit-reproducible: a run is a pure
//! function of the workload description and a `u64` seed.
//!
//! ```
//! use dqs_sim::{EventQueue, SimDuration, SimParams, SimTime};
//!
//! // Table 1: one instruction at 100 MIPS is 10 ns.
//! let params = SimParams::default();
//! assert_eq!(params.instr_time(100), SimDuration::from_micros(1));
//!
//! // The event queue fires in time order with FIFO tie-breaking.
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_nanos(20), "second");
//! q.schedule(SimTime::from_nanos(10), "first");
//! assert_eq!(q.pop().unwrap().1, "first");
//! assert_eq!(q.now(), SimTime::from_nanos(10));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod event;
pub mod params;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::{Clock, TimerHeap, TimerId, WallClock};
pub use event::{EventId, EventQueue};
pub use params::SimParams;
pub use resource::{FifoResource, Grant};
pub use rng::SeedSplitter;
pub use stats::Ewma;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};
