//! Simulation parameters.
//!
//! This is Table 1 of the paper, verbatim, plus derived quantities used all
//! over the engine. All values default to the published configuration so that
//! every experiment regenerates the paper's setting unless a sweep overrides
//! a field explicitly.

use crate::time::SimDuration;

/// Platform parameters (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// CPU speed in million instructions per second. Paper: 100 MIPS.
    pub cpu_mips: u64,
    /// Disk latency (rotational) per physical access. Paper: 17 ms.
    pub disk_latency: SimDuration,
    /// Disk seek time per physical access. Paper: 5 ms.
    pub disk_seek: SimDuration,
    /// Disk transfer rate in bytes per second. Paper: 6 MB/s.
    pub disk_transfer_bytes_per_sec: u64,
    /// I/O cache size in pages; sequential I/O is issued in batches of this
    /// many pages, paying one latency+seek per batch. Paper: 8 pages.
    pub io_cache_pages: u32,
    /// CPU instructions consumed to perform one I/O request. Paper: 3000.
    pub instr_per_io: u64,
    /// Number of local disks at the mediator. Paper: 1.
    pub num_disks: u32,
    /// Tuple size in bytes. Paper: 40.
    pub tuple_bytes: u32,
    /// Page size in bytes. Paper: 8 KB.
    pub page_bytes: u32,
    /// Instructions to move a tuple in memory. Paper: 100.
    pub instr_move_tuple: u64,
    /// Instructions to search for a match in a hash table. Paper: 100.
    pub instr_hash_search: u64,
    /// Instructions to produce a result tuple. Paper: 50.
    pub instr_produce_tuple: u64,
    /// Network bandwidth in bits per second. Paper: 100 Mb/s.
    pub network_bits_per_sec: u64,
    /// Instructions to send or receive one message. Paper: 200 000.
    pub instr_per_message: u64,
    /// Pages of tuples batched into one wrapper→mediator message. Not in
    /// Table 1 (the paper specifies the per-message cost but not the
    /// message size); calibrated so the strategies' relative gains match
    /// §5's reported numbers — see EXPERIMENTS.md.
    pub pages_per_message: u32,
    /// Depth of the asynchronous read-ahead window for temp-relation scans,
    /// in I/O-cache batches. Not in Table 1: this realizes §4.4's
    /// assumption that complement-fragment I/O and CPU overlap
    /// ("asynchronous I/O"); 32 batches × 8 pages × 8 KB = 2 MB per open
    /// scan.
    pub readahead_batches: u32,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            cpu_mips: 100,
            disk_latency: SimDuration::from_millis(17),
            disk_seek: SimDuration::from_millis(5),
            disk_transfer_bytes_per_sec: 6 * 1_000_000,
            io_cache_pages: 8,
            instr_per_io: 3_000,
            num_disks: 1,
            tuple_bytes: 40,
            page_bytes: 8 * 1024,
            instr_move_tuple: 100,
            instr_hash_search: 100,
            instr_produce_tuple: 50,
            network_bits_per_sec: 100 * 1_000_000,
            instr_per_message: 200_000,
            pages_per_message: 2,
            readahead_batches: 32,
        }
    }
}

impl SimParams {
    /// Time to execute `n` CPU instructions.
    pub fn instr_time(&self, n: u64) -> SimDuration {
        // 100 MIPS => 10 ns per instruction; keep exact with integer math:
        // ns = n * 1000 / mips.
        SimDuration::from_nanos(n.saturating_mul(1_000) / self.cpu_mips)
    }

    /// Tuples that fit in one page.
    pub fn tuples_per_page(&self) -> u32 {
        (self.page_bytes / self.tuple_bytes).max(1)
    }

    /// Pages needed to hold `tuples` tuples (rounded up, at least 0).
    pub fn pages_for_tuples(&self, tuples: u64) -> u64 {
        let per = self.tuples_per_page() as u64;
        tuples.div_ceil(per)
    }

    /// Bytes occupied by `tuples` tuples.
    pub fn bytes_for_tuples(&self, tuples: u64) -> u64 {
        tuples * self.tuple_bytes as u64
    }

    /// Pure transfer time of one page across the disk arm.
    pub fn disk_page_transfer(&self) -> SimDuration {
        SimDuration::from_nanos(
            (self.page_bytes as u64).saturating_mul(1_000_000_000)
                / self.disk_transfer_bytes_per_sec,
        )
    }

    /// Device time for one *physical* sequential I/O batch of `pages` pages:
    /// one latency + one seek + per-page transfer.
    pub fn disk_batch_time(&self, pages: u32) -> SimDuration {
        self.disk_latency + self.disk_seek + self.disk_page_transfer() * pages as u64
    }

    /// Network wire time for `bytes` bytes.
    pub fn network_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(bytes.saturating_mul(8_000_000_000) / self.network_bits_per_sec)
    }

    /// CPU time charged at the mediator to receive one message.
    pub fn message_cpu_time(&self) -> SimDuration {
        self.instr_time(self.instr_per_message)
    }

    /// Tuples carried by one wrapper→mediator message.
    pub fn tuples_per_message(&self) -> u64 {
        self.tuples_per_page() as u64 * self.pages_per_message as u64
    }

    /// The paper's `w_min`: minimum inter-tuple waiting time of a wrapper
    /// that reads tuples sequentially and ships them over the network.
    /// The paper reports 20 µs for the Table 1 configuration.
    pub fn w_min(&self) -> SimDuration {
        SimDuration::from_micros(20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults_match_paper() {
        let p = SimParams::default();
        assert_eq!(p.cpu_mips, 100);
        assert_eq!(p.disk_latency, SimDuration::from_millis(17));
        assert_eq!(p.disk_seek, SimDuration::from_millis(5));
        assert_eq!(p.disk_transfer_bytes_per_sec, 6_000_000);
        assert_eq!(p.io_cache_pages, 8);
        assert_eq!(p.instr_per_io, 3_000);
        assert_eq!(p.num_disks, 1);
        assert_eq!(p.tuple_bytes, 40);
        assert_eq!(p.page_bytes, 8192);
        assert_eq!(p.instr_move_tuple, 100);
        assert_eq!(p.instr_hash_search, 100);
        assert_eq!(p.instr_produce_tuple, 50);
        assert_eq!(p.network_bits_per_sec, 100_000_000);
        assert_eq!(p.instr_per_message, 200_000);
    }

    #[test]
    fn instruction_time_is_10ns_at_100_mips() {
        let p = SimParams::default();
        assert_eq!(p.instr_time(1).as_nanos(), 10);
        assert_eq!(p.instr_time(100).as_nanos(), 1_000);
        // A message costs 2 ms of mediator CPU.
        assert_eq!(p.message_cpu_time(), SimDuration::from_millis(2));
    }

    #[test]
    fn page_geometry() {
        let p = SimParams::default();
        assert_eq!(p.tuples_per_page(), 204); // 8192 / 40
        assert_eq!(p.pages_for_tuples(0), 0);
        assert_eq!(p.pages_for_tuples(1), 1);
        assert_eq!(p.pages_for_tuples(204), 1);
        assert_eq!(p.pages_for_tuples(205), 2);
    }

    #[test]
    fn disk_timing() {
        let p = SimParams::default();
        // 8192 B at 6 MB/s = 1365333 ns.
        assert_eq!(p.disk_page_transfer().as_nanos(), 1_365_333);
        let batch = p.disk_batch_time(8);
        assert_eq!(
            batch.as_nanos(),
            22_000_000 + 8 * 1_365_333 // latency+seek plus 8 transfers
        );
    }

    #[test]
    fn network_timing() {
        let p = SimParams::default();
        // 40 bytes over 100 Mb/s = 3.2 µs.
        assert_eq!(p.network_time(40).as_nanos(), 3_200);
        // One 8 KB page = 655.36 µs.
        assert_eq!(p.network_time(8192).as_nanos(), 655_360);
    }
}
