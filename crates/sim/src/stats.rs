//! Small statistics helpers shared by the communication manager (delivery
//! rate estimation) and the experiment harness (run averaging).

use crate::time::SimDuration;

/// Exponentially weighted moving average of inter-arrival times.
///
/// The communication manager feeds one observation per received tuple batch;
/// [`Ewma::value`] is the live estimate of the wrapper's waiting time `w_p`
/// used by the scheduler's critical-degree metric (§4.3).
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
    observations: u64,
}

impl Ewma {
    /// `alpha` is the weight of a fresh observation (0 < alpha <= 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of (0,1]: {alpha}");
        Ewma {
            alpha,
            value: None,
            observations: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, sample: SimDuration) {
        let x = sample.as_nanos() as f64;
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
        self.observations += 1;
    }

    /// Current estimate, if any observation arrived yet.
    pub fn value(&self) -> Option<SimDuration> {
        self.value
            .map(|v| SimDuration::from_nanos(v.max(0.0).round() as u64))
    }

    /// Number of observations folded in.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Relative change |x - est| / est that `sample` would represent against
    /// the current estimate; `None` before the first observation.
    pub fn relative_deviation(&self, sample: SimDuration) -> Option<f64> {
        let v = self.value?;
        if v <= 0.0 {
            return None;
        }
        Some(((sample.as_nanos() as f64) - v).abs() / v)
    }
}

/// Mean of a set of f64 samples (used to average repeated seeded runs, the
/// paper repeats each measurement 3 times).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation; zero for fewer than two samples.
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_observation_is_exact() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        e.observe(SimDuration::from_micros(50));
        assert_eq!(e.value(), Some(SimDuration::from_micros(50)));
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        e.observe(SimDuration::from_micros(100));
        for _ in 0..100 {
            e.observe(SimDuration::from_micros(20));
        }
        let v = e.value().unwrap().as_nanos();
        assert!((v as i64 - 20_000).abs() < 100, "{v}");
    }

    #[test]
    fn ewma_tracks_rate_change() {
        let mut e = Ewma::new(0.5);
        e.observe(SimDuration::from_micros(20));
        // A 10x slower tuple shows a large relative deviation.
        let dev = e.relative_deviation(SimDuration::from_micros(200)).unwrap();
        assert!(dev > 5.0, "{dev}");
    }

    #[test]
    #[should_panic(expected = "alpha out of")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01, "{s}");
    }
}
