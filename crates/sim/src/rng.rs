//! Reproducible randomness.
//!
//! Every run of the simulator is driven by a single `u64` master seed. Each
//! component derives its own independent ChaCha8 stream from that seed and a
//! string label, so adding a component (or reordering RNG calls inside one
//! component) never perturbs the draws seen by the others. ChaCha8 is used
//! rather than `rand`'s default RNG because its output is specified and
//! stable across `rand` versions and platforms — a requirement for the
//! bit-reproducibility the experiment harness asserts.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::time::SimDuration;

/// Factory of independent per-component random streams.
#[derive(Debug, Clone, Copy)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Wrap a master seed.
    pub fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// The master seed this splitter derives from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the stream for the component named `label`.
    ///
    /// Uses an FNV-1a fold of the label into the master seed; labels that
    /// differ in any byte give unrelated streams.
    pub fn stream(&self, label: &str) -> ChaCha8Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.master;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Mix once more so nearby master seeds diverge fully.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        ChaCha8Rng::seed_from_u64(h)
    }
}

/// Sample an inter-tuple delay uniformly from `[0, 2w]`, the paper's §5.1.3
/// methodology ("we delay the production of each tuple by a delay uniformly
/// distributed in [0, 2w], thus resulting in an average waiting time of w").
pub fn uniform_delay(rng: &mut impl Rng, mean: SimDuration) -> SimDuration {
    if mean.is_zero() {
        return SimDuration::ZERO;
    }
    let hi = 2 * mean.as_nanos();
    SimDuration::from_nanos(rng.gen_range(0..=hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_label_same_stream() {
        let a = SeedSplitter::new(42).stream("wrapper:A");
        let b = SeedSplitter::new(42).stream("wrapper:A");
        let xs: Vec<u64> = a
            .clone()
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = b
            .clone()
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let s = SeedSplitter::new(42);
        let x = s.stream("wrapper:A").next_u64();
        let y = s.stream("wrapper:B").next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn different_masters_diverge() {
        let x = SeedSplitter::new(1).stream("cm").next_u64();
        let y = SeedSplitter::new(2).stream("cm").next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn uniform_delay_mean_is_w() {
        let mut rng = SeedSplitter::new(7).stream("delay-test");
        let w = SimDuration::from_micros(100);
        let n = 20_000u64;
        let total: u128 = (0..n)
            .map(|_| uniform_delay(&mut rng, w).as_nanos() as u128)
            .sum();
        let mean_ns = (total / n as u128) as u64;
        let target = w.as_nanos();
        // Within 2 % of the nominal mean for 20 k samples.
        assert!(
            (mean_ns as i64 - target as i64).unsigned_abs() < target / 50,
            "mean {mean_ns} vs {target}"
        );
    }

    #[test]
    fn uniform_delay_bounded_by_2w() {
        let mut rng = SeedSplitter::new(9).stream("delay-bounds");
        let w = SimDuration::from_micros(10);
        for _ in 0..10_000 {
            let d = uniform_delay(&mut rng, w);
            assert!(d <= w * 2);
        }
    }

    #[test]
    fn zero_mean_delay_is_zero() {
        let mut rng = SeedSplitter::new(1).stream("z");
        assert_eq!(
            uniform_delay(&mut rng, SimDuration::ZERO),
            SimDuration::ZERO
        );
    }
}
