//! Serially reusable resources (the mediator CPU, the local disk).
//!
//! A [`FifoResource`] models a single server with FIFO queueing discipline:
//! a request arriving at `now` with service demand `d` starts when the device
//! frees up and completes `d` later. The caller schedules the completion
//! event at the returned finish time. Utilization accounting is built in so
//! experiments can report CPU-busy and disk-busy fractions.

use crate::time::{SimDuration, SimTime};

/// A single FIFO server (CPU, disk, NIC, ...).
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: &'static str,
    next_free: SimTime,
    busy: SimDuration,
    requests: u64,
}

/// Outcome of a resource acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service actually starts (>= request time).
    pub start: SimTime,
    /// When service completes; schedule the completion event here.
    pub finish: SimTime,
    /// Time spent queueing before service.
    pub queued: SimDuration,
}

impl FifoResource {
    /// A fresh, idle resource. `name` labels panics and traces.
    pub fn new(name: &'static str) -> Self {
        FifoResource {
            name,
            next_free: SimTime::ZERO,
            busy: SimDuration::ZERO,
            requests: 0,
        }
    }

    /// Reserve the resource for `service` starting no earlier than `now`.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> Grant {
        let start = self.next_free.max(now);
        let finish = start + service;
        self.next_free = finish;
        self.busy += service;
        self.requests += 1;
        Grant {
            start,
            finish,
            queued: start - now,
        }
    }

    /// The earliest instant at which a new request could begin service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// True if a request arriving at `now` would start immediately.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.next_free <= now
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Utilization in [0, 1] over the horizon `[0, end]`.
    pub fn utilization(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / end.as_secs_f64()
    }

    /// Label given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration::from_micros(us)
    }

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new("cpu");
        let g = r.acquire(t(100), d(10));
        assert_eq!(g.start, t(100));
        assert_eq!(g.finish, t(110));
        assert_eq!(g.queued, SimDuration::ZERO);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = FifoResource::new("disk");
        let g1 = r.acquire(t(0), d(50));
        let g2 = r.acquire(t(10), d(20));
        assert_eq!(g1.finish, t(50));
        assert_eq!(g2.start, t(50));
        assert_eq!(g2.finish, t(70));
        assert_eq!(g2.queued, d(40));
    }

    #[test]
    fn gap_resets_start_time() {
        let mut r = FifoResource::new("cpu");
        r.acquire(t(0), d(10));
        let g = r.acquire(t(100), d(5));
        assert_eq!(g.start, t(100));
        assert!(r.is_idle_at(t(105)));
        assert!(!r.is_idle_at(t(104)));
    }

    #[test]
    fn accounting_tracks_busy_and_requests() {
        let mut r = FifoResource::new("cpu");
        r.acquire(t(0), d(30));
        r.acquire(t(0), d(30));
        assert_eq!(r.busy_time(), d(60));
        assert_eq!(r.requests(), 2);
        // Busy 60 µs over a 120 µs horizon => 50 % utilized.
        let u = r.utilization(t(120));
        assert!((u - 0.5).abs() < 1e-12, "{u}");
    }
}
