//! Property tests for the discrete-event core: the queue must behave
//! exactly like a sorted-stable reference model under arbitrary schedule /
//! cancel interleavings.

use dqs_sim::{EventQueue, FifoResource, SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Schedule(u32),
    CancelNth(u8),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..1_000).prop_map(Op::Schedule),
            any::<u8>().prop_map(Op::CancelNth),
            Just(Op::Pop),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The queue agrees with a naive reference model: a list of
    /// (time, seq, payload) sorted by (time, seq), minus cancellations, and
    /// never schedules into the past.
    #[test]
    fn queue_matches_reference_model(ops in ops()) {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Reference: Vec of (time_ns, seq, alive).
        let mut model: Vec<(u64, u64, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut seq = 0u64;
        let mut now = 0u64;

        for op in ops {
            match op {
                Op::Schedule(offset) => {
                    // Offsets keep times legal (>= now).
                    let at = now + offset as u64;
                    let id = q.schedule(SimTime::from_nanos(at), seq);
                    model.push((at, seq, true));
                    ids.push(id);
                    seq += 1;
                }
                Op::CancelNth(n) => {
                    if !ids.is_empty() {
                        let i = n as usize % ids.len();
                        let was_alive = model[i].2;
                        let cancelled = q.cancel(ids[i]);
                        prop_assert_eq!(cancelled, was_alive,
                            "cancel succeeds iff the event was pending");
                        model[i].2 = false;
                    }
                }
                Op::Pop => {
                    // Reference: earliest (time, seq) alive entry.
                    let next = model
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.2)
                        .min_by_key(|(_, e)| (e.0, e.1));
                    match (q.pop(), next) {
                        (Some((at, payload)), Some((i, &(t, s, _)))) => {
                            prop_assert_eq!(at.as_nanos(), t);
                            prop_assert_eq!(payload, s);
                            model[i].2 = false;
                            now = t;
                        }
                        (None, None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "queue {got:?} vs model {want:?}"
                            )));
                        }
                    }
                }
            }
            prop_assert_eq!(q.pending(), model.iter().filter(|e| e.2).count());
        }
    }

    /// Draining an arbitrary schedule pops times in nondecreasing order,
    /// and ties come out in insertion (FIFO) order — the stability the
    /// engine's determinism rests on.
    #[test]
    fn pops_nondecreasing_with_fifo_ties(times in prop::collection::vec(0u64..8, 1..100)) {
        // A tiny time domain (0..8) forces heavy tie traffic.
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        let mut popped = 0usize;
        while let Some((at, payload)) = q.pop() {
            prop_assert_eq!(times[payload], at.as_nanos(), "payload popped at its own time");
            if let Some((pt, pp)) = prev {
                prop_assert!(at >= pt, "times nondecreasing: {pt:?} then {at:?}");
                if at == pt {
                    prop_assert!(payload > pp,
                        "FIFO tie-break: insertion {pp} must precede {payload}");
                }
            }
            prev = Some((at, payload));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len(), "every scheduled event pops exactly once");
    }

    /// FIFO resources: completions are ordered, busy time equals the sum
    /// of service demands, and no grant starts before its request.
    #[test]
    fn fifo_resource_conserves_time(demands in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..60)) {
        let mut r = FifoResource::new("prop");
        let mut last_finish = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for (arrive, service) in demands {
            let at = SimTime::from_nanos(arrive);
            let d = SimDuration::from_micros(service);
            let g = r.acquire(at, d);
            prop_assert!(g.start >= at);
            prop_assert_eq!(g.finish, g.start + d);
            prop_assert!(g.finish >= last_finish, "completions are FIFO-ordered");
            last_finish = g.finish;
            total += d;
        }
        prop_assert_eq!(r.busy_time(), total);
    }
}
