//! Memory-limited execution (§4.1/§4.2): what happens when the hash tables
//! of the plan do not all fit in query memory.
//!
//! The dynamic scheduler's M-schedulability gate staggers hash-table
//! builds, and when a single chain can never fit while the tables it
//! probes stay resident, the dynamic QEP optimizer (DQO) splits the chain
//! — inserting a materialization "at the highest possible point" so the
//! probed tables can be released first.
//!
//! ```sh
//! cargo run --release --example memory_pressure
//! ```

use dqs_core::DsePolicy;
use dqs_exec::{Engine, SeqPolicy, Workload};

fn main() {
    println!(
        "Figure-5 workload; all hash tables together need ~16 MB.\n\
         Shrinking the query-memory budget:\n"
    );
    println!(
        "{:>10} | {:^28} | {:^28}",
        "budget", "SEQ (static iterator)", "DSE (DQS + DQO)"
    );
    println!("{:->10}-+-{:-^28}-+-{:-^28}", "", "", "");
    for mb in [32u64, 24, 20, 18, 16, 12, 8] {
        let budget = mb * 1024 * 1024;

        let seq_cell = {
            let (mut w, _) = Workload::fig5();
            w.config.memory_bytes = budget;
            match Engine::new(&w, SeqPolicy).try_run() {
                Ok(m) => format!("{:.3}s", m.response_secs()),
                Err(_) => "FAILS (not M-schedulable)".to_string(),
            }
        };
        let dse_cell = {
            let (mut w, _) = Workload::fig5();
            w.config.memory_bytes = budget;
            match Engine::new(&w, DsePolicy::new()).try_run() {
                Ok(m) => format!(
                    "{:.3}s  (peak {:.1} MB, {} splits)",
                    m.response_secs(),
                    m.memory_high_water as f64 / (1024.0 * 1024.0),
                    m.degradations,
                ),
                Err(e) => format!("FAILS: {e}"),
            }
        };
        println!("{:>7} MB | {:<28} | {:<28}", mb, seq_cell, dse_cell);
    }
    println!(
        "\nSEQ reserves hash tables in plan order and simply dies when one\n\
         does not fit (§4.2: execution must suspend and the plan must change).\n\
         DSE schedules within the budget and falls back to the DQO's chain\n\
         split when a single chain is the problem."
    );
}
