//! The §1.2 delay taxonomy: *initial delay*, *bursty arrival*, and *slow
//! delivery* — and §1.3's claim that dynamic scheduling, being independent
//! of any timeout mechanism, handles all three (where query scrambling
//! handles only the first two).
//!
//! ```sh
//! cargo run --release --example delay_taxonomy
//! ```

use dqs_bench::{run_once, StrategyKind};
use dqs_exec::Workload;
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

fn main() {
    let (base, fig5) = Workload::fig5();
    let a = fig5.rels.a;
    let n = base.catalog.cardinality(a);
    let w_min = base.config.params.w_min();

    let cases: Vec<(&str, &str, DelayModel)> = vec![
        (
            "baseline",
            "A paced at w_min like everyone else",
            DelayModel::Constant { w: w_min },
        ),
        (
            "initial delay",
            "A's first tuple arrives 3 s late (remote start-up cost)",
            DelayModel::Initial {
                initial: SimDuration::from_secs(3),
                mean: w_min,
            },
        ),
        (
            "bursty arrival",
            "A arrives in 10 bursts separated by 300 ms of silence",
            DelayModel::Bursty {
                burst: n / 10,
                within: w_min,
                pause: SimDuration::from_millis(300),
            },
        ),
        (
            "slow delivery",
            "A is steadily 4x slower than normal (overloaded source)",
            DelayModel::Uniform { mean: w_min * 4 },
        ),
    ];

    for (name, blurb, model) in cases {
        let w = base.clone().with_delay(a, model);
        println!("--- {name}: {blurb}");
        let seq = run_once(&w, StrategyKind::Seq);
        for strategy in StrategyKind::ALL {
            let m = run_once(&w, strategy);
            println!(
                "    {:<4} {:>8.3}s  stall {:>6.3}s  gain {:>6.1}%",
                m.strategy,
                m.response_secs(),
                m.stall_time.as_secs_f64(),
                m.gain_over(&seq) * 100.0,
            );
        }
        println!();
    }
    println!(
        "DSE improves every case: it never waits on a timeout to react (§1.3),\n\
         so even repetitive short delays (bursty, slow) are absorbed by\n\
         interleaving other fragments."
    );
}
