//! Quickstart: run the paper's Figure 5 integration query under all three
//! execution strategies and compare them against the analytic lower bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dqs_bench::{run_once, StrategyKind};
use dqs_core::lwb;
use dqs_exec::Workload;

fn main() {
    // The experiment workload: six remote relations (A–F), five hash
    // joins, every wrapper pacing tuples at the platform's w_min = 20 µs.
    let (workload, fig5) = Workload::fig5();

    println!("Integrating {} relations:", workload.catalog.len());
    for (_, rel) in workload.catalog.iter() {
        println!("  {:>2}: {:>7} tuples", rel.name, rel.cardinality);
    }
    println!();
    println!("Plan (build side first = blocking edge):");
    let catalog = workload.catalog.clone();
    print!("{}", fig5.qep.render(&|r| catalog.name(r).to_string()));
    println!();

    let bound = lwb(&workload);
    println!(
        "Analytic lower bound: {:.3}s (CPU work {:.3}s, slowest retrieval {:.3}s)",
        bound.bound().as_secs_f64(),
        bound.cpu_work.as_secs_f64(),
        bound.max_retrieval.as_secs_f64()
    );
    println!();
    println!(
        "{:<5} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "strat", "resp[s]", "stall[s]", "pages-w", "pages-r", "output"
    );
    let mut seq_resp = None;
    for strategy in StrategyKind::ALL {
        let m = run_once(&workload, strategy);
        if strategy == StrategyKind::Seq {
            seq_resp = Some(m.response_secs());
        }
        let gain = seq_resp
            .map(|s| format!("  ({:+.1}% vs SEQ)", (s - m.response_secs()) / s * 100.0))
            .unwrap_or_default();
        println!(
            "{:<5} {:>9.3} {:>9.3} {:>8} {:>8} {:>7}{}",
            m.strategy,
            m.response_secs(),
            m.stall_time.as_secs_f64(),
            m.pages_written,
            m.pages_read,
            m.output_tuples,
            gain,
        );
    }
    println!();
    println!(
        "DSE keeps the processor busy by interleaving pipeline chains and\n\
         partially materializing blocked inputs — the paper's §1.3 strategy."
    );
}
