//! The paper's headline scenario (§5.2, Figures 6/7): one autonomous source
//! turns slow and the mediator must keep working anyway.
//!
//! Slows relation A (or any relation passed as the first argument) so its
//! full retrieval takes 6 seconds, then shows how each strategy copes and
//! what the dynamic scheduler actually did: which chains it degraded, how
//! many planning phases ran, and where the time went.
//!
//! ```sh
//! cargo run --release --example slow_wrapper [A-F] [seconds]
//! ```

use dqs_bench::experiments::slowdown_workload;
use dqs_bench::{run_once, StrategyKind};
use dqs_core::lwb;

fn main() {
    let letter = std::env::args()
        .nth(1)
        .and_then(|s| s.chars().next())
        .unwrap_or('A')
        .to_ascii_uppercase();
    let seconds: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6.0);

    let workload = slowdown_workload(letter, seconds);
    println!(
        "Relation {letter} slowed: its {} tuples now take ~{seconds:.1}s to arrive\n\
         (per-tuple delay uniform in [0, 2w], §5.1.3). Everything else runs at w_min.\n",
        workload
            .catalog
            .iter()
            .find(|(_, r)| r.name == letter.to_string())
            .map(|(_, r)| r.cardinality)
            .unwrap_or(0),
    );

    println!(
        "{:<5} {:>9} {:>9} {:>9} {:>6} {:>6} {:>7}",
        "strat", "resp[s]", "stall[s]", "disk[s]", "degr", "plans", "gain"
    );
    let seq = run_once(&workload, StrategyKind::Seq);
    for strategy in StrategyKind::ALL {
        let m = run_once(&workload, strategy);
        println!(
            "{:<5} {:>9.3} {:>9.3} {:>9.3} {:>6} {:>6} {:>6.1}%",
            m.strategy,
            m.response_secs(),
            m.stall_time.as_secs_f64(),
            m.disk_busy.as_secs_f64(),
            m.degradations,
            m.plans,
            m.gain_over(&seq) * 100.0,
        );
    }
    println!(
        "\nLWB = {:.3}s. SEQ stalls while {letter} trickles; MA spools everything to\n\
         disk whether slowed or not; DSE materializes only the chains that are\n\
         actually blocked and cancels the materialization the moment a chain\n\
         becomes schedulable.",
        lwb(&workload).bound().as_secs_f64()
    );
}
