//! Bring your own query: build a catalog and join graph, let the classical
//! dynamic-programming optimizer (§5.1.1) produce a bushy plan, and run it
//! under the dynamic scheduler — or generate a random query like the
//! paper's "[14]" workload generator and watch the decomposition.
//!
//! ```sh
//! cargo run --release --example custom_query [seed]
//! ```

use dqs_bench::{run_once, StrategyKind};
use dqs_exec::Workload;
use dqs_plan::{generate, optimize, AnnotatedPlan, Catalog, ChainSet, GeneratorConfig, JoinGraph};
use dqs_sim::{SeedSplitter, SimDuration, SimParams};
use dqs_source::DelayModel;

fn main() {
    // ---------------------------------------------------------------
    // Part 1: a hand-built star query through the DP optimizer.
    // ---------------------------------------------------------------
    let mut catalog = Catalog::new();
    let orders = catalog.add("orders", 120_000);
    let customers = catalog.add("customers", 20_000);
    let items = catalog.add("items", 5_000);
    let regions = catalog.add("regions", 50);

    let mut graph = JoinGraph::new();
    graph.join(orders, customers, 1.0 / 20_000.0); // FK: each order has one customer
    graph.join(orders, items, 1.0 / 5_000.0);
    graph.join(customers, regions, 1.0 / 50.0);

    let qep = optimize(&catalog, &graph).expect("connected join graph optimizes");
    println!("Optimized bushy plan for the star query:");
    let names = catalog.clone();
    print!("{}", qep.render(&|r| names.name(r).to_string()));

    let chains = ChainSet::decompose(&qep);
    println!("\n{} pipeline chains; dependency edges:", chains.len());
    for pc in &chains.chains {
        println!(
            "  p{} blocked_by {:?}",
            pc.id.0,
            pc.blocked_by.iter().map(|p| p.0).collect::<Vec<u32>>()
        );
    }

    // Run it with one slow wrapper (customers database is overloaded).
    let workload = Workload::new(catalog, qep).with_delay(
        customers,
        DelayModel::Uniform {
            mean: SimDuration::from_micros(200),
        },
    );
    println!("\nWith `customers` delivering 10x slower than normal:");
    for strategy in StrategyKind::ALL {
        let m = run_once(&workload, strategy);
        println!(
            "  {:<4} {:>8.3}s (stall {:.3}s, {} degradations)",
            m.strategy,
            m.response_secs(),
            m.stall_time.as_secs_f64(),
            m.degradations
        );
    }

    // ---------------------------------------------------------------
    // Part 2: a random query from the generator (the paper's "[14]").
    // ---------------------------------------------------------------
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut rng = SeedSplitter::new(seed).stream("custom-query-example");
    let generated = generate(
        &GeneratorConfig {
            relations: 8,
            ..GeneratorConfig::default()
        },
        &mut rng,
    );
    let plan = AnnotatedPlan::annotate(
        ChainSet::decompose(&generated.qep),
        &generated.catalog,
        &SimParams::default(),
    );
    println!(
        "\nRandom 8-way query (seed {seed}): {} chains, est. {:.1} MB of hash tables",
        plan.chains.len(),
        plan.total_ht_bytes() as f64 / (1024.0 * 1024.0)
    );
    let workload = Workload::new(generated.catalog, generated.qep);
    for strategy in StrategyKind::ALL {
        let m = run_once(&workload, strategy);
        println!(
            "  {:<4} {:>8.3}s ({} result tuples)",
            m.strategy,
            m.response_secs(),
            m.output_tuples
        );
    }
}
