//! Multi-query execution — the paper's §6 future work, implemented.
//!
//! "As soon as we consider such context, we face the classical tradeoff
//! between throughput and response time. Indeed, our strategy can reduce
//! significantly the response time at the expense of a potential increase
//! of total work."
//!
//! Packs N independent integration queries into one forest workload
//! sharing the mediator's CPU, disk and memory, and compares the serial
//! iterator execution against the dynamic scheduler.
//!
//! ```sh
//! cargo run --release --example multi_query [N]
//! ```

use dqs_bench::experiments::tenth_scale_fig5;
use dqs_bench::{run_once, StrategyKind};
use dqs_exec::{combine, SingleQuery};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let one = tenth_scale_fig5();
    println!(
        "{n} identical six-way integration queries submitted together\n\
         ({} tuples each, all wrappers at w_min)\n",
        one.catalog.total_tuples()
    );

    let queries: Vec<SingleQuery> = (0..n).map(|_| SingleQuery::from_workload(&one)).collect();
    let workload = combine(&queries, one.config.clone());

    for strategy in [StrategyKind::Seq, StrategyKind::Dse] {
        let m = run_once(&workload, strategy);
        println!("{}:", m.strategy);
        println!("  makespan          {:>8.3}s", m.response_secs());
        for (q, t) in &m.query_responses {
            println!("  query {q} answered  {:>8.3}s", t.as_secs_f64());
        }
        println!(
            "  total work: cpu {:.3}s, disk {:.3}s, {} pages spooled\n",
            m.cpu_busy.as_secs_f64(),
            m.disk_busy.as_secs_f64(),
            m.pages_written
        );
    }
    println!(
        "SEQ answers query 0 quickly but serializes the rest; DSE overlaps\n\
         every query's retrievals — better makespan (throughput), later\n\
         first answers, more total work. Exactly the §6 tradeoff."
    );
}
