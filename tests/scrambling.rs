//! Scrambling-vs-DSE integration tests on the Figure 5 workload: the §1.2
//! comparison the paper makes in prose, measured.

use dqs_bench::{run_once, StrategyKind};
use dqs_exec::Workload;
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

fn fig5_with_a(model: DelayModel, timeout_ms: u64) -> Workload {
    let (base, f5) = Workload::fig5();
    let mut w = base.with_delay(f5.rels.a, model);
    w.config.timeout = SimDuration::from_millis(timeout_ms);
    w
}

#[test]
fn scr_beats_seq_on_initial_delay_but_loses_to_dse() {
    let w = fig5_with_a(
        DelayModel::Initial {
            initial: SimDuration::from_secs(3),
            mean: SimDuration::from_micros(20),
        },
        500,
    );
    let seq = run_once(&w, StrategyKind::Seq);
    let scr = run_once(&w, StrategyKind::Scr);
    let dse = run_once(&w, StrategyKind::Dse);
    assert!(scr.response_time < seq.response_time, "SCR improves on SEQ");
    assert!(dse.response_time < scr.response_time, "DSE improves on SCR");
    assert_eq!(scr.output_tuples, 90_000);
    assert!(scr.timeouts >= 1, "scrambling must have stepped");
}

#[test]
fn scr_equals_seq_on_slow_delivery() {
    // §1.2: "the authors have not provided any solution to the problem of
    // slow delivery" — trickling data never trips the timeout.
    let w = fig5_with_a(
        DelayModel::Uniform {
            mean: SimDuration::from_micros(80),
        },
        500,
    );
    let seq = run_once(&w, StrategyKind::Seq);
    let scr = run_once(&w, StrategyKind::Scr);
    assert_eq!(scr.timeouts, 0, "80 µs gaps never reach 500 ms");
    let ratio = scr.response_secs() / seq.response_secs();
    assert!(
        (ratio - 1.0).abs() < 0.02,
        "SCR must degenerate to SEQ: ratio {ratio:.3}"
    );
    // While DSE, timeout-free, absorbs it.
    let dse = run_once(&w, StrategyKind::Dse);
    assert!(dse.gain_over(&seq) > 0.25);
}

#[test]
fn scr_is_timeout_sensitive_dse_is_not() {
    // §1.2's configuration criticism, quantified: the spread of SCR's
    // response across timeout settings is large; DSE has no timeout knob
    // in its reaction path at all (the engine timeout only signals the
    // DQO hook).
    let delay = DelayModel::Initial {
        initial: SimDuration::from_secs(3),
        mean: SimDuration::from_micros(20),
    };
    let mut scr_times = Vec::new();
    let mut dse_times = Vec::new();
    for ms in [100u64, 1_000, 4_000] {
        let w = fig5_with_a(delay.clone(), ms);
        scr_times.push(run_once(&w, StrategyKind::Scr).response_secs());
        dse_times.push(run_once(&w, StrategyKind::Dse).response_secs());
    }
    let spread = |v: &[f64]| {
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / min
    };
    assert!(
        spread(&scr_times) > 0.10,
        "SCR must vary with the timeout: {scr_times:?}"
    );
    assert!(
        spread(&dse_times) < 0.05,
        "DSE must not care about the timeout: {dse_times:?}"
    );
}

#[test]
fn all_four_strategies_agree_on_fig5_answers() {
    let w = fig5_with_a(
        DelayModel::Uniform {
            mean: SimDuration::from_micros(60),
        },
        500,
    );
    for s in StrategyKind::WITH_SCR {
        assert_eq!(run_once(&w, s).output_tuples, 90_000, "{}", s.name());
    }
}
