//! Memory-limitation behaviour (§4.1/§4.2): M-schedulability gating and the
//! DQO's chain split keep the dynamic scheduler alive where the static
//! iterator execution cannot proceed.

use dqs_core::DsePolicy;
use dqs_exec::{Engine, SeqPolicy, Workload};
use dqs_plan::{Catalog, QepBuilder};

fn fig5_with_budget(mb: u64) -> Workload {
    let (mut w, _) = Workload::fig5();
    w.config.memory_bytes = mb * 1024 * 1024;
    w
}

#[test]
fn dse_completes_under_moderate_pressure() {
    // The plan needs ~16 MB of hash tables if everything were resident at
    // once; DSE staggers them.
    for mb in [16u64, 12] {
        let m = Engine::new(&fig5_with_budget(mb), DsePolicy::new())
            .try_run()
            .unwrap_or_else(|e| panic!("DSE must survive {mb} MB: {e}"));
        assert_eq!(m.output_tuples, 90_000, "{mb} MB");
        assert!(m.memory_high_water <= mb * 1024 * 1024);
    }
}

#[test]
fn dse_uses_dqo_split_under_severe_pressure() {
    // 8 MB cannot hold HT(J1) (6 MB) together with HT(J2) (4.8 MB): the
    // chain building HT(J2) must be split so HT(J1) is released first.
    let m = Engine::new(&fig5_with_budget(8), DsePolicy::new())
        .try_run()
        .expect("DSE must survive 8 MB via the DQO split");
    assert_eq!(m.output_tuples, 90_000);
    assert!(
        m.memory_high_water <= 8 * 1024 * 1024,
        "peak {} must respect the budget",
        m.memory_high_water
    );
    assert!(
        m.degradations > 4,
        "severe pressure requires extra splits, got {}",
        m.degradations
    );
}

#[test]
fn seq_aborts_when_not_m_schedulable() {
    let err = Engine::new(&fig5_with_budget(8), SeqPolicy)
        .try_run()
        .expect_err("SEQ has no answer to memory overflow");
    assert!(
        err.to_string().contains("M-schedulable"),
        "abort reason should cite M-schedulability: {err}"
    );
    assert_eq!(err.kind(), "memory_unresolvable");
}

#[test]
fn memory_pressure_costs_time_not_correctness() {
    let fast = Engine::new(&fig5_with_budget(32), DsePolicy::new())
        .try_run()
        .unwrap();
    let tight = Engine::new(&fig5_with_budget(8), DsePolicy::new())
        .try_run()
        .unwrap();
    assert_eq!(fast.output_tuples, tight.output_tuples);
    assert!(
        tight.response_time > fast.response_time,
        "staggering must cost response time: {} vs {}",
        tight.response_time,
        fast.response_time
    );
}

#[test]
fn single_oversized_chain_is_reported() {
    // One build side larger than the whole budget: no scheduling trick can
    // fix that (the paper defers to full re-optimization, out of scope) —
    // the engine must fail with a diagnosis rather than hang.
    let mut cat = Catalog::new();
    let a = cat.add("A", 100_000); // 4 MB hash table
    let b = cat.add("B", 1_000);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 1.0);
    let sb = qb.scan(b, 1.0);
    let j = qb.hash_join(sa, sb, 1.0);
    let mut w = Workload::new(cat, qb.finish(j).unwrap());
    w.config.memory_bytes = 1024 * 1024; // 1 MB
    let err = Engine::new(&w, DsePolicy::new())
        .try_run()
        .expect_err("an oversized build side cannot succeed");
    assert!(!err.to_string().is_empty());
}

#[test]
fn peak_memory_tracks_hash_table_sizes() {
    let m = Engine::new(&fig5_with_budget(32), DsePolicy::new())
        .try_run()
        .unwrap();
    // HT(J1) = 150K × 40 B = 6 MB must have been resident at some point.
    assert!(m.memory_high_water >= 6_000_000);
    // And everything fits well below the 16 MB sum because probers release
    // tables as they finish.
    assert!(m.memory_high_water < 16 * 1024 * 1024);
}
