//! Multi-query (§6) integration tests: packing independent queries into a
//! forest must preserve every per-query answer, and the throughput /
//! response-time tradeoff must point the way the paper predicts — and,
//! since PR 3, the *concurrent* path: independent sessions admitted
//! together by the mediator service must answer exactly as they do alone,
//! under a shared memory budget that is never exceeded.

use dqs_bench::experiments::tenth_scale_fig5;
use dqs_bench::{run_once, StrategyKind};
use dqs_exec::spec::WorkloadSpec;
use dqs_exec::{combine, run_workload_realtime, SingleQuery, Workload};
use dqs_mediator::{submit, MediatorServer, Progress, ServeOpts, SubmitOpts};
use dqs_plan::{Catalog, QepBuilder};
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

fn small(card: u64, fanout: f64) -> SingleQuery {
    let mut cat = Catalog::new();
    let a = cat.add("A", card);
    let b = cat.add("B", card * 2);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 1.0);
    let sb = qb.scan(b, 1.0);
    let j = qb.hash_join(sa, sb, fanout);
    let qep = qb.finish(j).unwrap();
    SingleQuery {
        catalog: cat,
        qep,
        delays: vec![
            DelayModel::Constant {
                w: SimDuration::from_micros(20)
            };
            2
        ],
    }
}

#[test]
fn forest_answers_match_individual_runs() {
    // Run each query alone, then together; per-query outputs must match.
    let q1 = small(1_000, 1.0); // out: 2000
    let q2 = small(500, 2.0); // out: 2000
    let q3 = small(800, 0.5); // out: 800

    let mut solo_total = 0;
    for q in [&q1, &q2, &q3] {
        let w = Workload::new(q.catalog.clone(), q.qep.clone());
        solo_total += run_once(&w, StrategyKind::Seq).output_tuples;
    }

    let forest = combine(&[q1, q2, q3], dqs_exec::EngineConfig::default());
    for s in StrategyKind::ALL {
        let m = run_once(&forest, s);
        assert_eq!(m.output_tuples, solo_total, "{}", s.name());
        assert_eq!(m.query_responses.len(), 3, "{}", s.name());
    }
}

#[test]
fn seq_serializes_queries() {
    let forest = combine(
        &[small(2_000, 1.0), small(2_000, 1.0)],
        dqs_exec::EngineConfig::default(),
    );
    let m = run_once(&forest, StrategyKind::Seq);
    let (q0, q1) = (m.query_responses[0].1, m.query_responses[1].1);
    // Query 1 finishes roughly twice as late as query 0.
    let ratio = q1.as_secs_f64() / q0.as_secs_f64();
    assert!(
        ratio > 1.7,
        "SEQ must serialize: q0 {q0}, q1 {q1} (ratio {ratio:.2})"
    );
}

#[test]
fn dse_improves_makespan_over_seq() {
    let one = tenth_scale_fig5();
    let queries: Vec<SingleQuery> = (0..3).map(|_| SingleQuery::from_workload(&one)).collect();
    let forest = combine(&queries, one.config.clone());
    let seq = run_once(&forest, StrategyKind::Seq);
    let dse = run_once(&forest, StrategyKind::Dse);
    assert!(
        dse.response_time < seq.response_time,
        "DSE makespan {} must beat SEQ {}",
        dse.response_time,
        seq.response_time
    );
    // The §6 cost: DSE does extra (materialization) work.
    assert!(dse.cpu_busy + dse.disk_busy > seq.cpu_busy + seq.disk_busy);
}

#[test]
fn forest_with_one_slow_query_shields_the_others_under_dse() {
    // Query 1's wrapper crawls; under DSE, query 0 should still answer in
    // reasonable time instead of queueing behind it.
    let mut slow = small(2_000, 1.0);
    slow.delays[0] = DelayModel::Uniform {
        mean: SimDuration::from_millis(1),
    };
    let fast = small(2_000, 1.0);
    let forest = combine(&[slow, fast], dqs_exec::EngineConfig::default());
    let m = run_once(&forest, StrategyKind::Dse);
    let q_slow = m.query_responses[0].1;
    let q_fast = m.query_responses[1].1;
    assert!(
        q_fast.as_secs_f64() < q_slow.as_secs_f64() / 2.0,
        "the fast query ({q_fast}) must not wait for the slow one ({q_slow})"
    );
}

// ---------------------------------------------------------------------------
// Concurrent sessions through the mediator service
// ---------------------------------------------------------------------------

/// A ~200 ms two-relation query spec, sized differently per index so each
/// session has a distinguishable answer.
fn session_spec(i: u64) -> String {
    format!(
        r#"{{
            "relations": [
                {{"name": "r", "cardinality": {r}, "delay": {{"uniform_us": 100}}}},
                {{"name": "s", "cardinality": {s}, "delay": {{"uniform_us": 80}}}}
            ],
            "joins": [{{"left": "r", "right": "s", "selectivity": 0.0005}}],
            "config": {{"seed": {seed}}}
        }}"#,
        r = 1_500 + 500 * i,
        s = 2_000 + 300 * i,
        seed = 42 + i
    )
}

#[test]
fn concurrent_mediator_sessions_match_sequential_results() {
    const N: u64 = 3;
    const BUDGET: u64 = 64 << 20;
    const MAX_CONCURRENT: usize = 2;

    // Baseline: each query alone, in-process, under the same memory
    // partition the mediator will grant.
    let mut solo = Vec::new();
    for i in 0..N {
        let mut w = WorkloadSpec::from_json(&session_spec(i))
            .and_then(WorkloadSpec::into_workload)
            .expect("spec valid");
        w.config.memory_bytes = BUDGET / MAX_CONCURRENT as u64;
        let m = run_workload_realtime(&w, dqs_core::DsePolicy::new()).expect("solo run");
        solo.push(m.output_tuples);
    }

    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            max_concurrent: MAX_CONCURRENT,
            backlog: 8,
            memory_bytes: BUDGET,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    // Submit all N together from independent client threads.
    let handles: Vec<_> = (0..N)
        .map(|i| {
            std::thread::spawn(move || {
                submit(addr, &session_spec(i), &SubmitOpts::default(), |_| {})
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread").expect("remote run"))
        .collect();

    for (i, m) in results.iter().enumerate() {
        assert_eq!(
            m.output_tuples, solo[i],
            "session {i}: concurrent answer must match the solo run"
        );
    }

    let stats = mediator.stats();
    assert!(
        stats.max_active_seen >= 2,
        "with {N} ~200 ms queries and {MAX_CONCURRENT} slots, concurrency \
         must actually happen (saw {})",
        stats.max_active_seen
    );
    assert!(
        stats.max_active_seen <= MAX_CONCURRENT,
        "admission must cap concurrency"
    );
    assert!(
        stats.mem_peak <= BUDGET,
        "peak shared-memory accounting ({}) must never exceed the global \
         budget ({BUDGET})",
        stats.mem_peak
    );
    assert_eq!(stats.mem_peak, (BUDGET / MAX_CONCURRENT as u64) * 2);
    assert_eq!(stats.running, 0, "all sessions released their slots");
    assert_eq!(stats.admitted, N);
    mediator.shutdown();
}

#[test]
fn backlog_overflow_is_rejected_while_excess_load_queues() {
    // One slot, backlog of one: the second submission queues, the third
    // bounces.
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            max_concurrent: 1,
            backlog: 1,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    // First session: hold the slot until we've probed the other two.
    let (started_tx, started_rx) = std::sync::mpsc::channel();
    let first = std::thread::spawn(move || {
        submit(addr, &session_spec(0), &SubmitOpts::default(), |p| {
            if matches!(p, Progress::Accepted { .. }) {
                started_tx.send(()).ok();
            }
        })
    });
    started_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("first session admitted");

    // Second: must be told it is queued (and eventually complete).
    let (queued_tx, queued_rx) = std::sync::mpsc::channel();
    let second = std::thread::spawn(move || {
        submit(addr, &session_spec(1), &SubmitOpts::default(), |p| {
            if let Progress::Queued(pos) = p {
                queued_tx.send(pos).ok();
            }
        })
    });
    let pos = queued_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("second session queued");
    assert_eq!(pos, 0, "first in the backlog");

    // Third: backlog full, must be rejected immediately.
    let err = submit(addr, &session_spec(2), &SubmitOpts::default(), |_| {})
        .expect_err("backlog of 1 is already full");
    assert!(
        matches!(err, dqs_mediator::ClientError::Rejected(_)),
        "{err}"
    );

    let m1 = first.join().unwrap().expect("first run");
    let m2 = second
        .join()
        .unwrap()
        .expect("queued run promoted and finished");
    assert!(m1.output_tuples > 0 && m2.output_tuples > 0);
    let stats = mediator.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(
        stats.max_active_seen, 1,
        "one slot means strict serialization"
    );
    mediator.shutdown();
}
