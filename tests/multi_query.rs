//! Multi-query (§6) integration tests: packing independent queries into a
//! forest must preserve every per-query answer, and the throughput /
//! response-time tradeoff must point the way the paper predicts.

use dqs_bench::experiments::tenth_scale_fig5;
use dqs_bench::{run_once, StrategyKind};
use dqs_exec::{combine, SingleQuery, Workload};
use dqs_plan::{Catalog, QepBuilder};
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

fn small(card: u64, fanout: f64) -> SingleQuery {
    let mut cat = Catalog::new();
    let a = cat.add("A", card);
    let b = cat.add("B", card * 2);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 1.0);
    let sb = qb.scan(b, 1.0);
    let j = qb.hash_join(sa, sb, fanout);
    let qep = qb.finish(j).unwrap();
    SingleQuery {
        catalog: cat,
        qep,
        delays: vec![
            DelayModel::Constant {
                w: SimDuration::from_micros(20)
            };
            2
        ],
    }
}

#[test]
fn forest_answers_match_individual_runs() {
    // Run each query alone, then together; per-query outputs must match.
    let q1 = small(1_000, 1.0); // out: 2000
    let q2 = small(500, 2.0); // out: 2000
    let q3 = small(800, 0.5); // out: 800

    let mut solo_total = 0;
    for q in [&q1, &q2, &q3] {
        let w = Workload::new(q.catalog.clone(), q.qep.clone());
        solo_total += run_once(&w, StrategyKind::Seq).output_tuples;
    }

    let forest = combine(&[q1, q2, q3], dqs_exec::EngineConfig::default());
    for s in StrategyKind::ALL {
        let m = run_once(&forest, s);
        assert_eq!(m.output_tuples, solo_total, "{}", s.name());
        assert_eq!(m.query_responses.len(), 3, "{}", s.name());
    }
}

#[test]
fn seq_serializes_queries() {
    let forest = combine(
        &[small(2_000, 1.0), small(2_000, 1.0)],
        dqs_exec::EngineConfig::default(),
    );
    let m = run_once(&forest, StrategyKind::Seq);
    let (q0, q1) = (m.query_responses[0].1, m.query_responses[1].1);
    // Query 1 finishes roughly twice as late as query 0.
    let ratio = q1.as_secs_f64() / q0.as_secs_f64();
    assert!(
        ratio > 1.7,
        "SEQ must serialize: q0 {q0}, q1 {q1} (ratio {ratio:.2})"
    );
}

#[test]
fn dse_improves_makespan_over_seq() {
    let one = tenth_scale_fig5();
    let queries: Vec<SingleQuery> = (0..3).map(|_| SingleQuery::from_workload(&one)).collect();
    let forest = combine(&queries, one.config.clone());
    let seq = run_once(&forest, StrategyKind::Seq);
    let dse = run_once(&forest, StrategyKind::Dse);
    assert!(
        dse.response_time < seq.response_time,
        "DSE makespan {} must beat SEQ {}",
        dse.response_time,
        seq.response_time
    );
    // The §6 cost: DSE does extra (materialization) work.
    assert!(dse.cpu_busy + dse.disk_busy > seq.cpu_busy + seq.disk_busy);
}

#[test]
fn forest_with_one_slow_query_shields_the_others_under_dse() {
    // Query 1's wrapper crawls; under DSE, query 0 should still answer in
    // reasonable time instead of queueing behind it.
    let mut slow = small(2_000, 1.0);
    slow.delays[0] = DelayModel::Uniform {
        mean: SimDuration::from_millis(1),
    };
    let fast = small(2_000, 1.0);
    let forest = combine(&[slow, fast], dqs_exec::EngineConfig::default());
    let m = run_once(&forest, StrategyKind::Dse);
    let q_slow = m.query_responses[0].1;
    let q_fast = m.query_responses[1].1;
    assert!(
        q_fast.as_secs_f64() < q_slow.as_secs_f64() / 2.0,
        "the fast query ({q_fast}) must not wait for the slow one ({q_slow})"
    );
}
