//! The paper's §5 experimental claims, asserted on reduced sweeps of the
//! actual Figure 6/7/8 workloads. These are the headline results of the
//! reproduction; EXPERIMENTS.md records the full-resolution numbers.

use dqs_bench::experiments::slowdown_workload;
use dqs_bench::{run_once, StrategyKind};
use dqs_core::lwb;
use dqs_exec::Workload;
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

/// §5.2 / Figure 6: "SEQ strategy's response time increases linearly with
/// the slowdown because the query processor stalls."
#[test]
fn fig6_seq_grows_linearly_with_slowdown() {
    let r4 = run_once(&slowdown_workload('A', 4.0), StrategyKind::Seq).response_secs();
    let r6 = run_once(&slowdown_workload('A', 6.0), StrategyKind::Seq).response_secs();
    let r8 = run_once(&slowdown_workload('A', 8.0), StrategyKind::Seq).response_secs();
    let slope1 = (r6 - r4) / 2.0;
    let slope2 = (r8 - r6) / 2.0;
    assert!(
        (slope1 - 1.0).abs() < 0.15 && (slope2 - 1.0).abs() < 0.15,
        "SEQ slope should be ~1 s per s of slowdown: {slope1:.3}, {slope2:.3}"
    );
}

/// §5.2: "One can be surprised by the important performance gain brought by
/// DSE (around 40%!) even when w = w_min."
#[test]
fn fig6_dse_gains_substantially_at_w_min() {
    let (w, _) = Workload::fig5();
    let seq = run_once(&w, StrategyKind::Seq);
    let dse = run_once(&w, StrategyKind::Dse);
    let gain = dse.gain_over(&seq);
    assert!(
        gain > 0.25,
        "DSE gain at w_min should be large (paper ~40 %), got {:.1}%",
        gain * 100.0
    );
}

/// §5.2: "MA's response time is always worse in these experiments and stays
/// constant with a slight increase after 8 seconds."
#[test]
fn fig6_ma_flat_and_worse_at_baseline() {
    let base = slowdown_workload('A', 0.0);
    let seq0 = run_once(&base, StrategyKind::Seq);
    let ma0 = run_once(&base, StrategyKind::Ma);
    assert!(
        ma0.response_time > seq0.response_time,
        "MA ({}) must be worse than SEQ ({}) when nothing is slowed",
        ma0.response_time,
        seq0.response_time
    );
    // Flat: between 3 s and 7 s of slowdown MA moves by < 10 %.
    let ma3 = run_once(&slowdown_workload('A', 3.0), StrategyKind::Ma).response_secs();
    let ma7 = run_once(&slowdown_workload('A', 7.0), StrategyKind::Ma).response_secs();
    assert!(
        (ma7 - ma3).abs() / ma3 < 0.10,
        "MA should be flat over small slowdowns: {ma3:.2} vs {ma7:.2}"
    );
    // After ~8 s the slowed relation becomes MA's bottleneck.
    let ma12 = run_once(&slowdown_workload('A', 12.0), StrategyKind::Ma).response_secs();
    assert!(
        ma12 > ma7 + 1.0,
        "MA must grow once the slowdown exceeds its phase-1 time: {ma7:.2} -> {ma12:.2}"
    );
}

/// §5.2 / Figures 6-7: DSE dominates both baselines across the sweep.
#[test]
fn fig67_dse_dominates() {
    for letter in ['A', 'F'] {
        for x in [0.0, 5.0, 8.0] {
            let w = slowdown_workload(letter, x);
            let seq = run_once(&w, StrategyKind::Seq);
            let ma = run_once(&w, StrategyKind::Ma);
            let dse = run_once(&w, StrategyKind::Dse);
            assert!(
                dse.response_time < seq.response_time && dse.response_time < ma.response_time,
                "{letter}@{x}: DSE {} vs SEQ {} / MA {}",
                dse.response_time,
                seq.response_time,
                ma.response_time
            );
        }
    }
}

/// §5.2: "DSE achieves better performance improvement with F than with A,
/// specifically when the slowdown is high, because while p_A is not
/// terminated, we cannot schedule p_B and p_F."
#[test]
fn fig67_f_improves_more_than_a_at_high_slowdown() {
    let x = 8.0;
    let wa = slowdown_workload('A', x);
    let wf = slowdown_workload('F', x);
    let gain_a = run_once(&wa, StrategyKind::Dse).gain_over(&run_once(&wa, StrategyKind::Seq));
    let gain_f = run_once(&wf, StrategyKind::Dse).gain_over(&run_once(&wf, StrategyKind::Seq));
    assert!(
        gain_f > gain_a,
        "gain(F)={:.1}% should exceed gain(A)={:.1}%",
        gain_f * 100.0,
        gain_a * 100.0
    );
}

/// §5.2: LWB is a valid lower bound across the figure sweeps.
#[test]
fn fig67_lwb_under_everything() {
    for letter in ['A', 'F'] {
        for x in [0.0, 6.0] {
            let w = slowdown_workload(letter, x);
            // Five-sigma discount on the stochastic retrieval term.
            let bound = lwb(&w).probabilistic_bound(5.0).as_secs_f64();
            for s in StrategyKind::ALL {
                let m = run_once(&w, s);
                assert!(m.response_secs() >= bound, "{letter}@{x} {}", s.name());
            }
        }
    }
}

/// §5.3 / Figure 8: "the performance gain increases with the w_min value
/// and goes up to 70%."
#[test]
fn fig8_gain_increases_and_tops_out_high() {
    let gain_at = |us: u64| {
        let (base, _) = Workload::fig5();
        let w = base.with_all_delays(DelayModel::Uniform {
            mean: SimDuration::from_micros(us),
        });
        let seq = run_once(&w, StrategyKind::Seq);
        let dse = run_once(&w, StrategyKind::Dse);
        dse.gain_over(&seq)
    };
    let g8 = gain_at(8);
    let g20 = gain_at(20);
    let g60 = gain_at(60);
    assert!(
        g8 < g20 && g20 < g60,
        "gain must increase: {g8} {g20} {g60}"
    );
    assert!(
        g60 > 0.60,
        "gain should approach the paper's 70 % at high w_min, got {:.1}%",
        g60 * 100.0
    );
    assert!(
        g8.abs() < 0.10,
        "at tiny w_min both strategies are CPU-bound: {:.1}%",
        g8 * 100.0
    );
}
