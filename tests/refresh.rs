//! End-to-end freshness tests: a churning wrapper-server under a
//! refreshing mediator, real TCP in between.
//!
//! The acceptance bar is bit-identity: after the wrapper's relations
//! mutate, a warm (cache-served) submission must return exactly the
//! answer a `--no-cache` truth run computes against the wrapper's
//! *current* state — the background refresher is what closes that gap,
//! by appending insert-only tails (cheap) or swapping full re-scans
//! (rewrites) into the resident entries.

use std::time::{Duration, Instant};

use dqs_mediator::{submit, MediatorServer, ServeOpts, SubmitOpts, WrapperServer};
use dqs_relop::RelId;

/// Lift one integer counter out of the raw metrics JSON a run reports.
fn metric_u64(raw: &str, key: &str) -> u64 {
    let v = dqs_exec::json::parse(raw).expect("metrics JSON parses");
    v.as_object()
        .and_then(|obj| {
            obj.iter()
                .find(|(n, _)| n == key)
                .and_then(|(_, v)| v.as_u64())
        })
        .unwrap_or_else(|| panic!("metrics JSON lacks {key}: {raw}"))
}

/// A quickstart-shaped spec with delays fast enough that refresh fetches
/// finish well inside one polling interval.
const SPEC: &str = r#"{
    "relations": [
        {"name": "orders",    "cardinality": 2000, "delay": {"uniform_us": 5}},
        {"name": "customers", "cardinality": 3000, "delay": {"constant_us": 4}}
    ],
    "joins": [{"left": "orders", "right": "customers", "selectivity": 1e-4}],
    "config": {"seed": 42}
}"#;

/// A refreshing mediator over one wrapper group, with the given refresh
/// traffic budget (0 = unlimited).
fn refresh_mediator(wrapper_addr: &str, budget_kbps: u64) -> MediatorServer {
    MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![format!("w0={wrapper_addr}")],
            cache_bytes: 8 << 20,
            refresh_interval: Some(Duration::from_millis(100)),
            refresh_budget_kbps: budget_kbps,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator")
}

/// Poll the mediator's cache stats until `pred` holds or the deadline
/// passes; panics with `what` on timeout.
fn await_stats(
    mediator: &MediatorServer,
    what: &str,
    pred: impl Fn(&dqs_cache::CacheStats) -> bool,
) -> dqs_cache::CacheStats {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = mediator.cache_stats().expect("cache configured");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The tentpole acceptance check: append tuples behind the mediator's
/// back, let the refresher catch up via a tail delta, and verify the
/// warm cache-served answer is bit-identical to a `--no-cache` truth run
/// at the wrapper's current version — with zero stale hits and zero full
/// re-scan bytes (insert-only growth must refresh by delta).
#[test]
fn delta_refresh_keeps_warm_answers_bit_identical_after_appends() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = refresh_mediator(&wrapper.local_addr().to_string(), 0);
    let addr = mediator.local_addr();

    let cold = submit(addr, SPEC, &SubmitOpts::default(), |_| {}).expect("cold run");
    assert!(metric_u64(&cold.raw, "cache_misses") >= 1);

    // Mutate both relations the cold run registered on the wrapper.
    assert!(wrapper.mutate_append(RelId(0), 48), "orders registered");
    assert!(wrapper.mutate_append(RelId(1), 48), "customers registered");

    let stats = await_stats(&mediator, "a delta refresh to land", |s| {
        s.refreshes >= 2 && s.refresh_delta_bytes > 0
    });
    assert_eq!(
        stats.refresh_full_bytes, 0,
        "insert-only growth must refresh by tail delta, not full re-scan"
    );
    // Two relations, 48 tuples each, 8 bytes per key.
    assert_eq!(stats.refresh_delta_bytes, 2 * 48 * 8);

    let mut warm_lines = Vec::new();
    let traced = SubmitOpts {
        trace: true,
        ..SubmitOpts::default()
    };
    let warm = submit(addr, SPEC, &traced, |p| {
        if let dqs_mediator::Progress::TraceLine(l) = p {
            warm_lines.push(l);
        }
    })
    .expect("warm run");
    assert!(
        warm_lines
            .iter()
            .any(|l| l.contains("\"type\":\"cache_hit\"")),
        "the refreshed entry must still serve warm hits"
    );
    assert!(metric_u64(&warm.raw, "cache_hits") >= 1);
    assert_eq!(
        metric_u64(&warm.raw, "stale_served"),
        0,
        "an unlimited budget leaves nothing stale: {}",
        warm.raw
    );
    assert!(metric_u64(&warm.raw, "refreshes") >= 2);

    let truth = submit(
        addr,
        SPEC,
        &SubmitOpts {
            no_cache: true,
            ..SubmitOpts::default()
        },
        |_| {},
    )
    .expect("truth run");
    assert_eq!(
        warm.output_tuples, truth.output_tuples,
        "refreshed warm answer must be bit-identical to the no-cache truth"
    );
    mediator.shutdown();
    wrapper.shutdown();
}

/// A rewrite bumps the wrapper's `rewrite_version`, so the tail-delta
/// shortcut is off the table: the refresher must re-scan from zero, and
/// the warm answer must again match the truth run.
#[test]
fn rewrites_force_a_full_rescan_and_still_converge() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = refresh_mediator(&wrapper.local_addr().to_string(), 0);
    let addr = mediator.local_addr();

    submit(addr, SPEC, &SubmitOpts::default(), |_| {}).expect("cold run");
    assert!(wrapper.mutate_rewrite(RelId(0)), "orders registered");

    let stats = await_stats(&mediator, "a full re-scan to land", |s| {
        s.refresh_full_bytes > 0
    });
    // The rewritten relation re-fetched all 2000 keys at 8 bytes each.
    assert!(stats.refresh_full_bytes >= 2000 * 8, "{stats:?}");

    let warm = submit(addr, SPEC, &SubmitOpts::default(), |_| {}).expect("warm run");
    assert!(metric_u64(&warm.raw, "cache_hits") >= 1);
    let truth = submit(
        addr,
        SPEC,
        &SubmitOpts {
            no_cache: true,
            ..SubmitOpts::default()
        },
        |_| {},
    )
    .expect("truth run");
    assert_eq!(warm.output_tuples, truth.output_tuples);
    mediator.shutdown();
    wrapper.shutdown();
}

/// A starvation-level budget cannot afford any delta, so the planner
/// defers the entry and marks it stale; warm hits on it are still served
/// (availability over freshness) but honestly counted as `stale_served`.
#[test]
fn over_budget_entries_are_deferred_and_stale_hits_are_counted() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    // 1 KiB/s over a 100 ms cycle is ~102 bytes — below even one
    // relation's 48-tuple (384-byte) delta.
    let mediator = refresh_mediator(&wrapper.local_addr().to_string(), 1);
    let addr = mediator.local_addr();

    let cold = submit(addr, SPEC, &SubmitOpts::default(), |_| {}).expect("cold run");
    assert!(wrapper.mutate_append(RelId(0), 48), "orders registered");

    // The refresher can only defer; a warm hit then reports staleness.
    let deadline = Instant::now() + Duration::from_secs(30);
    let warm = loop {
        let m = submit(addr, SPEC, &SubmitOpts::default(), |_| {}).expect("warm run");
        if metric_u64(&m.raw, "stale_served") >= 1 {
            break m;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for a stale-served hit: {}",
            m.raw
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    // Stale is still served: the answer is the capture-time answer.
    assert_eq!(warm.output_tuples, cold.output_tuples);
    let stats = mediator.cache_stats().expect("cache configured");
    assert_eq!(stats.refresh_delta_bytes, 0, "nothing was affordable");
    assert_eq!(stats.refresh_full_bytes, 0);
    mediator.shutdown();
    wrapper.shutdown();
}
