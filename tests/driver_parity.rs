//! Cross-driver parity suite for the sans-io refactor.
//!
//! The golden table below was captured (via the `parity_gold` binary) from
//! the engine *before* the driver layer existed, when the event loop was
//! hard-wired to the `EventQueue`. Each row fingerprints one run
//! completely: a canonical rendering of every `RunMetrics` field plus an
//! FNV-1a-64 hash over the full JSON-lines event stream. The suite asserts
//! that the engine running on `SimDriver` still reproduces every byte —
//! the refactor moved the substrate behind a trait without perturbing a
//! single event, cost charge, or RNG draw.
//!
//! The wall-clock half exercises `RealTimeDriver`: threaded wrappers with
//! microsecond sleeps must complete a join and produce the same output
//! cardinality as the simulated run for the same seed (the deterministic
//! parts — payloads and join fan-out — are substrate-independent; only
//! timing differs).

use dqs_bench::fingerprint::{fingerprint_run, lwb_signature, parity_workloads};
use dqs_bench::StrategyKind;
use dqs_exec::{run_workload, run_workload_realtime, SeqPolicy, Workload};
use dqs_plan::{Catalog, QepBuilder};
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

const GOLDEN: &[(&str, &str, &str, u64)] = &[
    ("fig5/s42", "SEQ", "SEQ seed=42 rt=11479149500 out=90000 cpu=4530000000 disk=0 pw=0 pr=0 seeks=0 stall=6949169500 batches=411801 plans=7 eoq=6 rc=6 to=0 mo=0 deg=0 hw=10800000 ev=988801 qr=[0:11479149500]", 0x858152b64beeb860),
    ("fig5/s42", "MA", "MA seed=42 rt=12757489065 out=90000 cpu=5276920000 disk=10107246112 pw=2832 pr=2832 seeks=434 stall=2243365350 batches=71680 plans=13 eoq=12 rc=6 to=0 mo=0 deg=6 hw=10800000 ev=659177 qr=[0:12757489065]", 0x2056a11c8d83fed7),
    ("fig5/s42", "SCR", "SCR seed=42 rt=11479149500 out=90000 cpu=4530000000 disk=0 pw=0 pr=0 seeks=0 stall=6949169500 batches=411801 plans=7 eoq=6 rc=6 to=0 mo=0 deg=0 hw=10800000 ev=988801 qr=[0:11479149500]", 0x858152b64beeb860),
    ("fig5/s42", "DSE", "DSE seed=42 rt=7631455346 out=90000 cpu=5052508000 disk=7230449346 pw=1981 pr=1981 seeks=337 stall=2579057346 batches=14045 plans=9 eoq=8 rc=6 to=0 mo=0 deg=4 hw=11880000 ev=629587 qr=[0:7631455346]", 0x379914fbb4ad875c),
    ("fig5/s42", "lwb", "LWB bound=4530000000 cpu=4530000000 retr=3600000000", 0x0),
    ("mix/s1", "SEQ", "SEQ seed=1 rt=3035086849 out=1600 cpu=66950000 disk=0 pw=0 pr=0 seeks=0 stall=2968493147 batches=4614 plans=8 eoq=4 rc=3 to=1 mo=0 deg=0 hw=216000 ev=11915 qr=[0:3035086849]", 0x9332f4ac816624c5),
    ("mix/s1", "MA", "MA seed=1 rt=3103181177 out=1600 cpu=76470000 disk=297034642 pw=37 pr=37 seeks=12 stall=2921740185 batches=4120 plans=11 eoq=8 rc=4 to=1 mo=0 deg=4 hw=216000 ev=12888 qr=[0:3103181177]", 0x6c19731299bcb596),
    ("mix/s1", "SCR", "SCR seed=1 rt=3035086849 out=1600 cpu=66950000 disk=0 pw=0 pr=0 seeks=0 stall=2968493147 batches=4614 plans=8 eoq=4 rc=3 to=1 mo=0 deg=0 hw=216000 ev=11915 qr=[0:3035086849]", 0x9332f4ac816624c5),
    ("mix/s1", "DSE", "DSE seed=1 rt=3034286849 out=1600 cpu=70590000 disk=136229324 pw=14 pr=14 seeks=6 stall=2963996849 batches=4545 plans=10 eoq=6 rc=3 to=1 mo=0 deg=2 hw=216000 ev=16453 qr=[0:3034286849]", 0x70f87388d64e783c),
    ("mix/s1", "lwb", "LWB bound=3029979000 cpu=66950000 retr=3029979000", 0x0),
    ("mix/s7", "SEQ", "SEQ seed=7 rt=3035345226 out=1600 cpu=66950000 disk=0 pw=0 pr=0 seeks=0 stall=2968648112 batches=4602 plans=9 eoq=4 rc=4 to=1 mo=0 deg=0 hw=216000 ev=11903 qr=[0:3035345226]", 0x6c13f05b54f92cf9),
    ("mix/s7", "MA", "MA seed=7 rt=3103439554 out=1600 cpu=76470000 disk=297034642 pw=37 pr=37 seeks=12 stall=2921938562 batches=4122 plans=11 eoq=8 rc=4 to=1 mo=0 deg=4 hw=216000 ev=12871 qr=[0:3103439554]", 0x5bc6d439b02aee4a),
    ("mix/s7", "SCR", "SCR seed=7 rt=3035345226 out=1600 cpu=66950000 disk=0 pw=0 pr=0 seeks=0 stall=2968648112 batches=4602 plans=9 eoq=4 rc=4 to=1 mo=0 deg=0 hw=216000 ev=11903 qr=[0:3035345226]", 0x6c13f05b54f92cf9),
    ("mix/s7", "DSE", "DSE seed=7 rt=3034545226 out=1600 cpu=70590000 disk=136229324 pw=14 pr=14 seeks=6 stall=2964255226 batches=4537 plans=10 eoq=6 rc=3 to=1 mo=0 deg=2 hw=216000 ev=16398 qr=[0:3034545226]", 0xd872871527b451ec),
    ("mix/s7", "lwb", "LWB bound=3029979000 cpu=66950000 retr=3029979000", 0x0),
    ("mix/s42", "SEQ", "SEQ seed=42 rt=3034307159 out=1600 cpu=66950000 disk=0 pw=0 pr=0 seeks=0 stall=2967697755 batches=4578 plans=8 eoq=4 rc=3 to=1 mo=0 deg=0 hw=216000 ev=11879 qr=[0:3034307159]", 0x24a9d54c3bc9ba89),
    ("mix/s42", "MA", "MA seed=42 rt=3102401487 out=1600 cpu=76470000 disk=297034642 pw=37 pr=37 seeks=12 stall=2920900495 batches=4103 plans=11 eoq=8 rc=4 to=1 mo=0 deg=4 hw=216000 ev=12881 qr=[0:3102401487]", 0x51dc6f6f561cb1b1),
    ("mix/s42", "SCR", "SCR seed=42 rt=3034307159 out=1600 cpu=66950000 disk=0 pw=0 pr=0 seeks=0 stall=2967697755 batches=4578 plans=8 eoq=4 rc=3 to=1 mo=0 deg=0 hw=216000 ev=11879 qr=[0:3034307159]", 0x24a9d54c3bc9ba89),
    ("mix/s42", "DSE", "DSE seed=42 rt=3033507159 out=1600 cpu=70590000 disk=136229324 pw=14 pr=14 seeks=6 stall=2963202801 batches=4509 plans=10 eoq=6 rc=3 to=1 mo=0 deg=2 hw=216000 ev=16332 qr=[0:3033507159]", 0x7ef89f09d9113406),
    ("mix/s42", "lwb", "LWB bound=3029979000 cpu=66950000 retr=3029979000", 0x0),
    ("forest/s7", "SEQ", "SEQ seed=7 rt=70224500 out=1800 cpu=47700000 disk=0 pw=0 pr=0 seeks=0 stall=22544500 batches=1304 plans=5 eoq=4 rc=4 to=0 mo=0 deg=0 hw=96000 ev=6704 qr=[0:30860000,1:70224500]", 0xfb44d9686031eed7),
    ("forest/s7", "MA", "MA seed=7 rt=299239982 out=1800 cpu=54720000 disk=259727982 pw=27 pr=27 seeks=10 stall=55603328 batches=523 plans=9 eoq=8 rc=4 to=0 mo=0 deg=4 hw=96000 ev=8332 qr=[0:242742654,1:299239982]", 0x6a5a32bfa8a0acb8),
    ("forest/s7", "SCR", "SCR seed=7 rt=70224500 out=1800 cpu=47700000 disk=0 pw=0 pr=0 seeks=0 stall=22544500 batches=1304 plans=5 eoq=4 rc=4 to=0 mo=0 deg=0 hw=96000 ev=6704 qr=[0:30860000,1:70224500]", 0xfb44d9686031eed7),
    ("forest/s7", "DSE", "DSE seed=7 rt=100169996 out=1800 cpu=49260000 disk=60383996 pw=6 pr=6 seeks=2 stall=50929996 batches=502 plans=6 eoq=5 rc=4 to=0 mo=0 deg=2 hw=144000 ev=6817 qr=[0:44244000,1:100169996]", 0x57e37885715342c1),
    ("forest/s7", "lwb", "LWB bound=48000000 cpu=47700000 retr=48000000", 0x0),
];

fn golden(workload: &str, strategy: &str) -> (&'static str, u64) {
    GOLDEN
        .iter()
        .find(|(w, s, _, _)| *w == workload && *s == strategy)
        .map(|&(_, _, sig, hash)| (sig, hash))
        .unwrap_or_else(|| panic!("no golden row for {workload}/{strategy}"))
}

/// Every strategy × workload × seed through `SimDriver` reproduces the
/// pre-refactor engine byte for byte: the full metrics signature AND the
/// FNV hash of the complete JSON event stream.
#[test]
fn sim_driver_is_bit_identical_to_pre_refactor_engine() {
    let workloads = parity_workloads();
    assert_eq!(
        workloads.len() * (StrategyKind::WITH_SCR.len() + 1),
        GOLDEN.len(),
        "parity matrix and golden table diverged"
    );
    for (name, w) in &workloads {
        for s in StrategyKind::WITH_SCR {
            let (want_sig, want_hash) = golden(name, s.name());
            let (sig, hash) = fingerprint_run(w, s);
            assert_eq!(sig, want_sig, "metrics drifted: {name}/{}", s.name());
            assert_eq!(
                hash,
                want_hash,
                "event stream drifted: {name}/{} (metrics identical — \
                 an intermediate event changed)",
                s.name()
            );
        }
        let (want_lwb, _) = golden(name, "lwb");
        assert_eq!(lwb_signature(w), want_lwb, "lower bound drifted: {name}");
    }
}

/// SPM has no pre-refactor golden (the strategy postdates the refactor),
/// so its parity contract is stated directly: on every golden workload it
/// reproduces SEQ's answer cardinality, and two runs fingerprint
/// bit-identically — metrics line and full event-stream hash.
#[test]
fn spm_matches_seq_answers_and_fingerprints_deterministically() {
    for (name, w) in &parity_workloads() {
        let (seq_sig, _) = fingerprint_run(w, StrategyKind::Seq);
        let (a_sig, a_hash) = fingerprint_run(w, StrategyKind::Spm);
        let (b_sig, b_hash) = fingerprint_run(w, StrategyKind::Spm);
        assert_eq!(a_sig, b_sig, "{name}: SPM metrics not deterministic");
        assert_eq!(a_hash, b_hash, "{name}: SPM event stream not deterministic");
        let out = |sig: &str| {
            sig.split(" out=")
                .nth(1)
                .and_then(|s| s.split(' ').next())
                .map(str::to_owned)
                .expect("signature carries out=")
        };
        assert_eq!(out(&a_sig), out(&seq_sig), "{name}: SPM answer diverged");
    }
}

/// A small join workload with microsecond inter-tuple gaps, for the
/// wall-clock smoke test (finishes in tens of milliseconds of real time).
fn smoke_workload() -> Workload {
    let mut cat = Catalog::new();
    let a = cat.add("A", 600);
    let b = cat.add("B", 900);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 0.8);
    let sb = qb.scan(b, 1.0);
    let j = qb.hash_join(sa, sb, 1.5);
    Workload::new(cat, qb.finish(j).unwrap())
        .with_all_delays(DelayModel::Constant {
            w: SimDuration::from_micros(2),
        })
        .with_delay(
            a,
            DelayModel::Uniform {
                mean: SimDuration::from_micros(4),
            },
        )
}

/// `RealTimeDriver` completes the query on actual threads and sleeps, and
/// the substrate-independent outcome — output cardinality — matches the
/// simulated run of the same workload and seed.
#[test]
fn real_time_driver_completes_with_sim_cardinality() {
    let w = smoke_workload();
    let sim = run_workload(&w, SeqPolicy);
    let rt = run_workload_realtime(&w, SeqPolicy).expect("real-time run completes");
    assert_eq!(rt.output_tuples, sim.output_tuples);
    assert!(rt.output_tuples > 0);
    assert!(
        rt.response_time > SimDuration::ZERO,
        "wall-clock run must take real time"
    );
    assert!(rt.events > 0);
}

/// Real-time determinism claim, narrowly: two real-time runs of the same
/// seed agree with each other on cardinality too (payloads and fan-out
/// rounding do not depend on wall-clock interleaving).
#[test]
fn real_time_driver_cardinality_is_seed_stable() {
    let w = smoke_workload();
    let r1 = run_workload_realtime(&w, SeqPolicy).expect("first run");
    let r2 = run_workload_realtime(&w, SeqPolicy).expect("second run");
    assert_eq!(r1.output_tuples, r2.output_tuples);
}
