//! Event-driven-core integration tests: session isolation under hostile
//! clients, the admission-backlog gauge, and a scaled-down C10K smoke.
//!
//! The full 10k-session run lives behind `dqs bench c10k` (and the CI
//! smoke job); these tests exercise the same machinery at a size that
//! stays comfortably inside a default test-runner's fd budget.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use dqs_mediator::{bench, submit, C10kOpts, MediatorServer, Progress, ServeOpts, SubmitOpts};

fn quickstart_json() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/quickstart.json"
    ))
    .expect("quickstart spec readable")
}

/// The slow-loris check: a client that dribbles two bytes of a Submit
/// frame's length prefix and then stalls forever must not delay anyone
/// else. With the old thread-per-connection core this was free; with a
/// shared event loop it is the property the per-connection state
/// machines exist to preserve.
#[test]
fn a_stalled_slow_loris_client_cannot_delay_other_sessions() {
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            io_threads: 1, // force the loris and the victim onto one loop
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    // The attacker: half a length prefix, then silence.
    let mut loris = TcpStream::connect(addr).expect("loris connects");
    loris.write_all(&[0x00, 0x00]).expect("partial prefix");

    // The victim: a complete, well-behaved session on the same loop.
    let started = Instant::now();
    let m = submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {})
        .expect("the well-behaved session completes");
    assert!(m.output_tuples > 0);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a stalled peer must not block the event loop"
    );

    // The loris is still connected (not yet timed out) the whole while.
    drop(loris);
    mediator.shutdown();
}

/// The backlog gauge: with one execution slot, a second submission parks
/// in the admission queue and `backlog_depth` must follow it in and out.
#[test]
fn backlog_depth_gauge_tracks_queueing_and_promotion() {
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            max_concurrent: 1,
            backlog: 8,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();
    let metrics = mediator.metrics();
    assert_eq!(metrics.backlog_depth(), 0);

    // A slow first session holds the only slot long enough for the
    // second to be observed queued.
    let slow_spec = r#"{
        "relations": [
            {"name": "r", "cardinality": 4000, "delay": {"constant_us": 300}},
            {"name": "s", "cardinality": 4000, "delay": {"constant_us": 300}}
        ],
        "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
    }"#;
    let (accepted_tx, accepted_rx) = channel();
    let holder = std::thread::spawn(move || {
        submit(addr, slow_spec, &SubmitOpts::default(), |p| {
            if matches!(p, Progress::Accepted { .. }) {
                accepted_tx.send(()).ok();
            }
        })
    });
    accepted_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("first session admitted");

    let (queued_tx, queued_rx) = channel();
    let parked = std::thread::spawn(move || {
        submit(addr, &quickstart_json(), &SubmitOpts::default(), |p| {
            if matches!(p, Progress::Queued(_)) {
                queued_tx.send(()).ok();
            }
        })
    });
    queued_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("second session queued");
    assert_eq!(metrics.backlog_depth(), 1, "one session parked");
    assert_eq!(metrics.backlog_enqueued(), 1);
    assert_eq!(metrics.backlog_dequeued(), 0);

    holder
        .join()
        .expect("holder thread")
        .expect("slow session completes");
    parked
        .join()
        .expect("parked thread")
        .expect("queued session is promoted and completes");
    assert_eq!(metrics.backlog_depth(), 0, "the gauge returns to zero");
    assert_eq!(metrics.backlog_enqueued(), 1);
    assert_eq!(metrics.backlog_dequeued(), 1);
    mediator.shutdown();
}

/// A queued client that disconnects must drain the gauge too (the reap
/// path, not the promotion path).
#[test]
fn backlog_depth_gauge_drains_when_a_queued_client_disconnects() {
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            max_concurrent: 1,
            backlog: 8,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();
    let metrics = mediator.metrics();

    let slow_spec = r#"{
        "relations": [
            {"name": "r", "cardinality": 4000, "delay": {"constant_us": 300}},
            {"name": "s", "cardinality": 4000, "delay": {"constant_us": 300}}
        ],
        "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
    }"#;
    let (accepted_tx, accepted_rx) = channel();
    let holder = std::thread::spawn(move || {
        submit(addr, slow_spec, &SubmitOpts::default(), |p| {
            if matches!(p, Progress::Accepted { .. }) {
                accepted_tx.send(()).ok();
            }
        })
    });
    accepted_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("first session admitted");

    // Park a raw client in the backlog, then hang up on it.
    let impatient = std::thread::spawn(move || {
        let _ = submit(
            addr,
            r#"{"relations":[{"name":"a","cardinality":10}]}"#,
            &SubmitOpts::default(),
            |p| {
                if matches!(p, Progress::Queued(_)) {
                    // Abandon the session from inside the callback by
                    // panicking the client thread; the TCP FIN is what
                    // the server reacts to.
                    panic!("abandon");
                }
            },
        );
    });
    let _ = impatient.join(); // the panic is the disconnect
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.backlog_depth() != 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(
        metrics.backlog_depth(),
        0,
        "a dead queued client must be reaped from the gauge"
    );
    holder
        .join()
        .expect("holder thread")
        .expect("slow session completes");
    mediator.shutdown();
}

/// A scaled-down C10K: three hundred concurrent sessions through the
/// library entry point the CLI bench uses, zero errors, and a peak that
/// proves they really were concurrent (one slot running, the rest held
/// open in the backlog).
#[test]
fn c10k_smoke_three_hundred_sessions_zero_errors() {
    let sessions = 300;
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            max_concurrent: 8,
            backlog: sessions,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let report = bench::run_c10k(&C10kOpts {
        addr: mediator.local_addr().to_string(),
        sessions,
        connect_batch: 50,
        timeout: Duration::from_secs(120),
        ..C10kOpts::default()
    })
    .expect("bench runs");

    assert_eq!(report.errored, 0, "no session may fail: {report:?}");
    assert_eq!(report.completed, sessions);
    assert!(
        report.peak_concurrent >= sessions / 2,
        "open-loop arrivals must actually pile up (peak {})",
        report.peak_concurrent
    );
    assert!(report.p50_ms > 0.0 && report.p99_ms >= report.p50_ms);
    assert!(report.p999_ms >= report.p99_ms);
    assert!(mediator.metrics().connections_accepted() >= sessions as u64);

    // The report round-trips through its own JSON.
    let v = dqs_exec::json::parse(&report.to_json()).expect("report JSON");
    assert!(v.as_object().is_some());
    mediator.shutdown();
}
