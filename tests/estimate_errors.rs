//! Inaccurate cardinality estimates (§1: "the sizes of intermediate
//! results used to estimate the costs of the integration query execution
//! plan are then likely to be inaccurate"). The engine must stay correct
//! when wrappers deliver more or less than the catalog claims; memory
//! reservations grow on demand; and the dynamic scheduler keeps its
//! advantage.

use dqs_bench::{run_once, StrategyKind};
use dqs_core::DsePolicy;
use dqs_exec::{Engine, Workload};
use dqs_plan::{Catalog, QepBuilder};
use dqs_relop::RelId;
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

fn two_way(card_a: u64, card_b: u64) -> Workload {
    let mut cat = Catalog::new();
    let a = cat.add("A", card_a);
    let b = cat.add("B", card_b);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 1.0);
    let sb = qb.scan(b, 1.0);
    let j = qb.hash_join(sa, sb, 1.0);
    Workload::new(cat, qb.finish(j).unwrap())
}

#[test]
fn answers_follow_actuals_not_estimates() {
    // Catalog claims 1000/2000; wrappers really deliver 1500/500.
    let w = two_way(1_000, 2_000)
        .with_actual_cardinality(RelId(0), 1_500)
        .with_actual_cardinality(RelId(1), 500);
    for s in StrategyKind::WITH_SCR {
        let m = run_once(&w, s);
        assert_eq!(
            m.output_tuples,
            500,
            "{}: the probe side really has 500 tuples",
            s.name()
        );
    }
}

#[test]
fn underestimated_build_grows_its_reservation() {
    // The build side delivers 4x its estimate; the hash-table reservation
    // must grow mid-build instead of corrupting accounting.
    let w = two_way(1_000, 1_000).with_actual_cardinality(RelId(0), 4_000);
    let m = Engine::new(&w, DsePolicy::new()).try_run().unwrap();
    assert_eq!(m.output_tuples, 1_000);
    // Peak memory reflects the *actual* 4000-tuple table.
    assert!(
        m.memory_high_water >= 4_000 * 40,
        "peak {} must cover the real build",
        m.memory_high_water
    );
}

#[test]
fn underestimate_that_busts_the_budget_fails_loudly() {
    let mut w = two_way(1_000, 1_000).with_actual_cardinality(RelId(0), 100_000);
    w.config.memory_bytes = 1_000_000; // 1 MB; the real table needs 4 MB
    let err = Engine::new(&w, DsePolicy::new())
        .try_run()
        .expect_err("a 100x underestimate cannot fit");
    assert!(
        err.to_string().contains("outgrew"),
        "diagnosis should blame the growing table: {err}"
    );
    assert_eq!(err.kind(), "memory_growth");
}

#[test]
fn overestimates_waste_memory_but_stay_correct() {
    // Wrappers deliver a tenth of the estimate: reservations are too big,
    // nothing breaks, the answer shrinks accordingly.
    let w = two_way(10_000, 10_000)
        .with_actual_cardinality(RelId(0), 1_000)
        .with_actual_cardinality(RelId(1), 1_000);
    for s in StrategyKind::ALL {
        let m = run_once(&w, s);
        assert_eq!(m.output_tuples, 1_000, "{}", s.name());
    }
}

#[test]
fn dse_keeps_its_advantage_under_bad_estimates() {
    // Figure-5 shape with every estimate off by ±50 % and A slowed.
    let (base, f5) = Workload::fig5();
    let mut w = base.with_delay(
        f5.rels.a,
        DelayModel::Uniform {
            mean: SimDuration::from_micros(80),
        },
    );
    for (i, factor) in [1.5f64, 0.5, 1.3, 0.7, 1.5, 0.6].iter().enumerate() {
        let rel = RelId(i as u16);
        let est = w.catalog.cardinality(rel);
        w = w.with_actual_cardinality(rel, (est as f64 * factor) as u64);
    }
    let seq = run_once(&w, StrategyKind::Seq);
    let dse = run_once(&w, StrategyKind::Dse);
    assert_eq!(dse.output_tuples, seq.output_tuples);
    assert!(
        dse.gain_over(&seq) > 0.15,
        "DSE should still win with wrong estimates: {:.1}%",
        dse.gain_over(&seq) * 100.0
    );
}

#[test]
fn zero_actuals_complete() {
    // A source that claims data but delivers none (dropped connection
    // after the sub-query, empty remote result, ...).
    let w = two_way(1_000, 1_000).with_actual_cardinality(RelId(0), 0);
    for s in StrategyKind::ALL {
        let m = run_once(&w, s);
        assert_eq!(m.output_tuples, 0, "{}", s.name());
    }
}
