//! Loopback integration tests for the networked mediator: wrapper-server
//! and mediator in one process on ephemeral ports, real TCP in between.
//!
//! The deterministic parts of a run — wrapper payloads, join fan-out,
//! output cardinality — depend only on the seed, not on timing, so a
//! query answered across sockets must produce exactly the tuples the
//! in-process real-time engine produces.

use std::sync::mpsc::channel;
use std::time::Duration;

use dqs_core::DsePolicy;
use dqs_exec::spec::WorkloadSpec;
use dqs_exec::{run_workload_realtime, Engine, JsonLinesSink, RealTimeDriver, RunError, Workload};
use dqs_mediator::{
    invalidate, submit, MediatorServer, Progress, ServeOpts, SubmitOpts, WrapperServer,
};
use dqs_source::{BoxSource, RemoteOpen, RemoteWrapper, SourceError};

/// Lift one integer counter out of the raw metrics JSON a run reports.
fn metric_u64(raw: &str, key: &str) -> u64 {
    let v = dqs_exec::json::parse(raw).expect("metrics JSON parses");
    v.as_object()
        .and_then(|obj| {
            obj.iter()
                .find(|(n, _)| n == key)
                .and_then(|(_, v)| v.as_u64())
        })
        .unwrap_or_else(|| panic!("metrics JSON lacks {key}: {raw}"))
}

fn quickstart_json() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/quickstart.json"
    ))
    .expect("quickstart spec readable")
}

fn quickstart_workload() -> Workload {
    WorkloadSpec::from_json(&quickstart_json())
        .and_then(WorkloadSpec::into_workload)
        .expect("quickstart spec valid")
}

/// The tentpole acceptance check: wrapper-server + mediator + client on
/// loopback return the same cardinality as the in-process real-time run
/// of the same spec and seed.
#[test]
fn loopback_flow_matches_in_process_realtime_run() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![wrapper.local_addr().to_string()],
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");

    let mut workload = quickstart_workload();
    // The mediator partitions its budget; give the local baseline the
    // same partition so the runs are configured identically.
    workload.config.memory_bytes = (64 << 20) / 2;
    let local = run_workload_realtime(&workload, DsePolicy::new()).expect("local run");

    let mut saw_accept = false;
    let remote = submit(
        mediator.local_addr(),
        &quickstart_json(),
        &SubmitOpts::default(),
        |p| {
            if matches!(p, Progress::Accepted { .. }) {
                saw_accept = true;
            }
        },
    )
    .expect("remote run");

    assert!(saw_accept, "lifecycle must pass through Accepted");
    assert_eq!(
        remote.output_tuples, local.output_tuples,
        "networked and in-process runs must agree on the answer"
    );
    assert_eq!(remote.strategy, "DSE");
    assert!(remote.response_secs > 0.0);

    mediator.shutdown();
    wrapper.shutdown();
}

/// The cache acceptance check: a warm resubmission of the same spec is
/// answered bit-identically *after the wrapper processes are gone* — the
/// replay sends zero `Open` frames, so nothing is left to refuse them.
#[test]
fn warm_submission_replays_from_cache_without_touching_wrappers() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![wrapper.local_addr().to_string()],
            cache_bytes: 8 << 20,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");

    let traced = SubmitOpts {
        trace: true,
        ..SubmitOpts::default()
    };
    let mut cold_lines = Vec::new();
    let cold = submit(mediator.local_addr(), &quickstart_json(), &traced, |p| {
        if let Progress::TraceLine(l) = p {
            cold_lines.push(l);
        }
    })
    .expect("cold run");
    assert!(
        cold_lines
            .iter()
            .any(|l| l.contains("\"type\":\"cache_miss\"")),
        "a cold run must trace its cache misses"
    );
    assert!(metric_u64(&cold.raw, "cache_misses") >= 1);
    assert_eq!(metric_u64(&cold.raw, "cache_hits"), 0);

    // Kill every wrapper: a warm run can only succeed via the cache.
    wrapper.shutdown();

    let mut warm_lines = Vec::new();
    let warm = submit(mediator.local_addr(), &quickstart_json(), &traced, |p| {
        if let Progress::TraceLine(l) = p {
            warm_lines.push(l);
        }
    })
    .expect("warm run must not need the wrappers");
    assert_eq!(
        warm.output_tuples, cold.output_tuples,
        "warm answer must be bit-identical to cold"
    );
    assert!(
        warm_lines
            .iter()
            .any(|l| l.contains("\"type\":\"cache_hit\"")),
        "a warm run must trace its cache hits"
    );
    assert!(metric_u64(&warm.raw, "cache_hits") >= 1);
    assert_eq!(metric_u64(&warm.raw, "cache_misses"), 0);
    assert!(metric_u64(&warm.raw, "cache_bytes_served") > 0);

    let stats = mediator.cache_stats().expect("cache configured");
    assert!(stats.hits >= 1 && stats.insertions >= 1);
    mediator.shutdown();
}

/// `--no-cache` bypasses both lookup and recording: two opted-out runs
/// never hit, and leave nothing behind for an opted-in run to find.
#[test]
fn no_cache_submissions_bypass_the_cache_entirely() {
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            cache_bytes: 8 << 20,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let opted_out = SubmitOpts {
        no_cache: true,
        ..SubmitOpts::default()
    };
    for _ in 0..2 {
        let m = submit(
            mediator.local_addr(),
            &quickstart_json(),
            &opted_out,
            |_| {},
        )
        .expect("opted-out run");
        assert_eq!(metric_u64(&m.raw, "cache_hits"), 0);
        assert_eq!(metric_u64(&m.raw, "cache_misses"), 0);
    }
    let stats = mediator.cache_stats().expect("cache configured");
    assert_eq!(stats.insertions, 0, "no-cache runs must not record");
    mediator.shutdown();
}

/// An `Invalidate` frame drops cached entries, so the next submission
/// misses and re-retrieves from the wrappers.
#[test]
fn invalidation_forces_the_next_submission_to_miss() {
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            cache_bytes: 8 << 20,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    let cold = submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {}).expect("cold run");
    let warm = submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {}).expect("warm run");
    assert!(metric_u64(&warm.raw, "cache_hits") >= 1);

    let (entries, bytes) =
        invalidate(addr, None, None, Duration::ZERO).expect("invalidate round-trip");
    assert!(entries >= 1, "a populated cache reports what it dropped");
    assert!(bytes > 0);

    let recold =
        submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {}).expect("re-cold run");
    assert_eq!(metric_u64(&recold.raw, "cache_hits"), 0);
    assert!(metric_u64(&recold.raw, "cache_misses") >= 1);
    assert_eq!(recold.output_tuples, cold.output_tuples);
    mediator.shutdown();
}

/// Invalidation scoped to a *logical* wrapper id — the replica-group id
/// cache keys actually carry — must clear that wrapper's entries. This
/// is the regression test for the blind spot where keys recorded the
/// group id but `--wrapper` was matched against endpoint addresses, so
/// scoped invalidation silently dropped nothing.
#[test]
fn invalidation_by_logical_wrapper_id_clears_that_wrappers_entries() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let endpoint = wrapper.local_addr().to_string();
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![format!("w0={endpoint}")],
            cache_bytes: 8 << 20,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {}).expect("cold run");
    let warm = submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {}).expect("warm run");
    assert!(metric_u64(&warm.raw, "cache_hits") >= 1);

    // A wrapper id nothing is keyed under drops nothing...
    let (entries, bytes) = invalidate(addr, None, Some("w9".into()), Duration::ZERO)
        .expect("no-match invalidate round-trip");
    assert_eq!((entries, bytes), (0, 0), "no entries are keyed under w9");

    // ...while the logical id the keys really carry clears the cache,
    // even though it is not an endpoint address.
    let (entries, bytes) = invalidate(addr, None, Some("w0".into()), Duration::ZERO)
        .expect("scoped invalidate round-trip");
    assert!(
        entries >= 1 && bytes > 0,
        "scoped invalidation must drop the group's entries, got ({entries}, {bytes})"
    );

    let recold =
        submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {}).expect("re-cold run");
    assert_eq!(metric_u64(&recold.raw, "cache_hits"), 0);
    assert!(metric_u64(&recold.raw, "cache_misses") >= 1);
    assert_eq!(recold.output_tuples, warm.output_tuples);
    mediator.shutdown();
    wrapper.shutdown();
}

/// `connect_timeout` retries the dial with backoff: a submit launched
/// before the mediator is listening still lands once it comes up.
#[test]
fn submit_retries_the_connect_until_the_mediator_is_up() {
    // Reserve a port, then free it for the late-starting mediator.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = placeholder.local_addr().expect("reserved addr");
    drop(placeholder);

    let server = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        MediatorServer::bind(addr, ServeOpts::default()).expect("bind mediator late")
    });

    let patient = SubmitOpts {
        connect_timeout: Duration::from_secs(30),
        ..SubmitOpts::default()
    };
    let m = submit(addr, &quickstart_json(), &patient, |_| {})
        .expect("retrying submit reaches the late mediator");
    assert!(m.output_tuples > 0);
    server.join().expect("server thread").shutdown();

    // And a zero timeout is a single attempt: nobody listens, it fails now.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let dead = placeholder.local_addr().expect("reserved addr");
    drop(placeholder);
    let err = submit(dead, &quickstart_json(), &SubmitOpts::default(), |_| {})
        .expect_err("no listener, no retry budget");
    assert!(matches!(err, dqs_mediator::ClientError::Io(_)), "{err}");
}

/// Tracing streams engine events back as frames, ending in the same
/// JSON-lines shapes the in-process sink writes.
#[test]
fn trace_frames_stream_engine_events_to_the_client() {
    let mediator =
        MediatorServer::bind("127.0.0.1:0", ServeOpts::default()).expect("bind mediator");
    let mut lines = Vec::new();
    let remote = submit(
        mediator.local_addr(),
        &quickstart_json(),
        &SubmitOpts {
            trace: true,
            ..SubmitOpts::default()
        },
        |p| {
            if let Progress::TraceLine(l) = p {
                lines.push(l);
            }
        },
    )
    .expect("traced run");
    assert!(remote.output_tuples > 0);
    assert!(!lines.is_empty(), "trace requested but no lines arrived");
    for l in &lines {
        let v = dqs_exec::json::parse(l).expect("each trace line is valid JSON");
        assert!(v.as_object().is_some());
    }
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"arrival\"")),
        "a run always has arrivals"
    );
    mediator.shutdown();
}

/// A bad spec is rejected without consuming an execution slot.
#[test]
fn malformed_spec_is_rejected_not_run() {
    let mediator =
        MediatorServer::bind("127.0.0.1:0", ServeOpts::default()).expect("bind mediator");
    let err = submit(
        mediator.local_addr(),
        "{\"relations\": []}",
        &SubmitOpts::default(),
        |_| {},
    )
    .expect_err("empty relation list cannot plan");
    assert!(
        matches!(err, dqs_mediator::ClientError::Rejected(_)),
        "{err}"
    );
    let stats = mediator.stats();
    assert_eq!(stats.admitted, 0, "no slot consumed");
    mediator.shutdown();
}

/// An unknown strategy is likewise rejected up front.
#[test]
fn unknown_strategy_is_rejected() {
    let mediator =
        MediatorServer::bind("127.0.0.1:0", ServeOpts::default()).expect("bind mediator");
    let err = submit(
        mediator.local_addr(),
        &quickstart_json(),
        &SubmitOpts {
            strategy: "greedy".into(),
            ..SubmitOpts::default()
        },
        |_| {},
    )
    .expect_err("unknown strategy");
    assert!(
        matches!(err, dqs_mediator::ClientError::Rejected(_)),
        "{err}"
    );
    mediator.shutdown();
}

/// A slow workload spec: few enough tuples to finish fast when drained,
/// but paced slowly enough that a mid-query kill reliably lands.
fn slow_workload() -> Workload {
    WorkloadSpec::from_json(
        r#"{
            "relations": [
                {"name": "r", "cardinality": 20000, "delay": {"constant_us": 400}},
                {"name": "s", "cardinality": 20000, "delay": {"constant_us": 400}}
            ],
            "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
        }"#,
    )
    .and_then(WorkloadSpec::into_workload)
    .expect("slow spec valid")
}

/// Kill the wrapper mid-query at the engine level: the run must abort
/// with a typed `RunError::Wrapper`, not hang — and the abort must appear
/// as an `EngineEvent::Aborted` JSON trace line.
#[test]
fn killing_the_wrapper_mid_query_aborts_cleanly() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let addr = wrapper.local_addr();
    let workload = slow_workload();

    // Dial a RemoteWrapper per relation, exactly as the mediator does.
    let driver = RealTimeDriver::try_with_sources(|notify| {
        workload
            .catalog
            .iter()
            .map(|(rel, spec)| {
                let open = RemoteOpen {
                    rel,
                    total: workload.actual_cardinality(rel),
                    window: workload.config.queue_capacity as u32,
                    seed: workload.config.seed,
                    stream: format!("wrapper:{}", spec.name),
                    delay: workload.delays[rel.0 as usize].clone(),
                    resume_from: 0,
                };
                RemoteWrapper::connect(addr, open, notify.clone(), Duration::from_secs(10))
                    .map(|w| Box::new(w) as BoxSource)
            })
            .collect::<Result<Vec<_>, SourceError>>()
    })
    .expect("wrappers reachable");

    let (done_tx, done_rx) = channel();
    let run_workload = workload;
    std::thread::spawn(move || {
        let mut trace = Vec::new();
        let sink = JsonLinesSink::new(&mut trace);
        let result = Engine::with_driver(&run_workload, DsePolicy::new(), sink, driver).try_run();
        done_tx
            .send((result, String::from_utf8(trace).unwrap()))
            .ok();
    });

    // Let the query get going, then sever every wrapper connection.
    std::thread::sleep(Duration::from_millis(500));
    wrapper.drop_connections();

    let (result, trace) = done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("the run must abort, not hang");
    match result {
        Err(RunError::Wrapper { error, .. }) => {
            assert_eq!(error.kind(), "disconnected", "{error}");
        }
        other => panic!("expected a wrapper abort, got {other:?}"),
    }
    assert!(
        trace.contains("\"type\":\"abort\",\"kind\":\"wrapper\""),
        "the abort must surface as an EngineEvent::Aborted trace line:\n{}",
        trace.lines().last().unwrap_or("")
    );
    wrapper.shutdown();
}

/// The same kill, end to end: a submitting client gets a terminal Error
/// frame naming the wrapper failure.
#[test]
fn killing_the_wrapper_surfaces_to_the_client() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![wrapper.local_addr().to_string()],
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");

    let slow_spec = r#"{
        "relations": [
            {"name": "r", "cardinality": 20000, "delay": {"constant_us": 400}},
            {"name": "s", "cardinality": 20000, "delay": {"constant_us": 400}}
        ],
        "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
    }"#;

    let (kill_tx, kill_rx) = channel();
    let addr = mediator.local_addr();
    let client = std::thread::spawn(move || {
        submit(addr, slow_spec, &SubmitOpts::default(), |p| {
            if matches!(p, Progress::Accepted { .. }) {
                kill_tx.send(()).ok();
            }
        })
    });
    kill_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("session accepted");
    std::thread::sleep(Duration::from_millis(400));
    wrapper.drop_connections();

    let err = client
        .join()
        .expect("client thread")
        .expect_err("the query must fail");
    match err {
        dqs_mediator::ClientError::Server(msg) => {
            assert!(
                msg.contains("wrapper") && msg.contains("disconnected"),
                "{msg}"
            );
        }
        other => panic!("expected a server-side abort, got {other}"),
    }
    mediator.shutdown();
    wrapper.shutdown();
}

/// A paced two-relation spec for the replica tests: long enough that a
/// mid-stream kill reliably lands, short enough to keep the suite fast.
const REPLICA_SPEC: &str = r#"{
    "relations": [
        {"name": "r", "cardinality": 8000, "delay": {"constant_us": 300}},
        {"name": "s", "cardinality": 8000, "delay": {"constant_us": 300}}
    ],
    "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
}"#;

/// The replica-manager acceptance check: kill the replica a scan is
/// pinned to while it streams; with a live peer the session must complete
/// with the *same answer* as an undisturbed run (the resume protocol
/// re-opens at the next undelivered index, so not a tuple is lost or
/// duplicated), report the failover in its metrics, and trace it.
#[test]
fn killing_a_replica_mid_scan_fails_over_bit_identically() {
    let rep_a = WrapperServer::bind("127.0.0.1:0").expect("bind replica a");
    let rep_b = WrapperServer::bind("127.0.0.1:0").expect("bind replica b");
    let a = rep_a.local_addr().to_string();
    let b = rep_b.local_addr().to_string();
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![format!("w0={a},{b}")],
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    // Baseline: both replicas healthy end to end.
    let baseline =
        submit(addr, REPLICA_SPEC, &SubmitOpts::default(), |_| {}).expect("baseline run");
    assert_eq!(metric_u64(&baseline.raw, "failovers"), 0);

    // Disturbed run: learn where the first scan pinned from the trace,
    // then kill that replica while the scan streams.
    let (pin_tx, pin_rx) = channel();
    let client = std::thread::spawn(move || {
        let mut lines = Vec::new();
        let result = submit(
            addr,
            REPLICA_SPEC,
            &SubmitOpts {
                trace: true,
                ..SubmitOpts::default()
            },
            |p| {
                if let Progress::TraceLine(l) = p {
                    if l.contains("\"type\":\"replica_pin\"") {
                        pin_tx.send(l.clone()).ok();
                    }
                    lines.push(l);
                }
            },
        );
        (result, lines)
    });
    let first_pin = pin_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("a replica pin trace line");
    std::thread::sleep(Duration::from_millis(800));
    let mut reps = [Some(rep_a), Some(rep_b)];
    let killed = usize::from(!first_pin.contains(&a));
    reps[killed].take().expect("not yet killed").shutdown();

    let (result, lines) = client.join().expect("client thread");
    let m = result.expect("a live peer must carry the query to completion");
    assert_eq!(
        m.output_tuples, baseline.output_tuples,
        "failover must not lose or duplicate tuples"
    );
    assert!(
        metric_u64(&m.raw, "failovers") >= 1,
        "the failover must be counted: {}",
        m.raw
    );
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"failover\"")),
        "the failover must be traced"
    );
    mediator.shutdown();
    for rep in reps.into_iter().flatten() {
        rep.shutdown();
    }
}

/// The rate-aware acceptance check: one deliberately slow replica (listed
/// first, so naive pick-the-first selection would always land on it) and
/// one fast one. After the first exploratory scans establish rates, every
/// scan must open on the fast replica — ≥90% of all pins overall.
#[test]
fn scans_prefer_the_faster_replica_once_rates_are_known() {
    let slow = WrapperServer::bind_throttled("127.0.0.1:0", Duration::from_millis(5))
        .expect("bind slow replica");
    let fast = WrapperServer::bind("127.0.0.1:0").expect("bind fast replica");
    let slow_addr = slow.local_addr().to_string();
    let fast_addr = fast.local_addr().to_string();
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![format!("g0={slow_addr},{fast_addr}")],
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    let spec = r#"{
        "relations": [
            {"name": "r", "cardinality": 300, "delay": {"constant_us": 100}},
            {"name": "s", "cardinality": 300, "delay": {"constant_us": 100}}
        ],
        "joins": [{"left": "r", "right": "s", "selectivity": 0.01}]
    }"#;
    let traced = SubmitOpts {
        trace: true,
        ..SubmitOpts::default()
    };
    let (mut fast_pins, mut total_pins) = (0u32, 0u32);
    for _ in 0..12 {
        let mut lines = Vec::new();
        submit(addr, spec, &traced, |p| {
            if let Progress::TraceLine(l) = p {
                lines.push(l);
            }
        })
        .expect("session completes");
        for l in lines
            .iter()
            .filter(|l| l.contains("\"type\":\"replica_pin\""))
        {
            total_pins += 1;
            if l.contains(&fast_addr) {
                fast_pins += 1;
            }
        }
    }
    assert_eq!(total_pins, 24, "two scans per session, twelve sessions");
    assert!(
        f64::from(fast_pins) >= 0.9 * f64::from(total_pins),
        "rate-aware selection must favor the fast replica: {fast_pins}/{total_pins} pins"
    );
    mediator.shutdown();
    slow.shutdown();
    fast.shutdown();
}

/// A wrapper spec that cannot parse into replica groups is a bind-time
/// error, not something discovered at first Submit.
#[test]
fn malformed_wrapper_groups_fail_at_bind() {
    let err = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec!["=127.0.0.1:1".into()],
            ..ServeOpts::default()
        },
    )
    .expect_err("an empty group id must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

/// The memory-budget edge: a cache budget that swallows the whole global
/// budget is rejected at bind with a clear error, and a valid split
/// partitions only what remains after the cache deduction.
#[test]
fn cache_budget_is_validated_at_bind_and_deducted_from_partitions() {
    let err = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            memory_bytes: 32 << 20,
            cache_bytes: 32 << 20,
            ..ServeOpts::default()
        },
    )
    .expect_err("a cache budget >= the global budget leaves sessions nothing");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("cache budget"), "{err}");

    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            memory_bytes: 64 << 20,
            cache_bytes: 16 << 20,
            max_concurrent: 2,
            ..ServeOpts::default()
        },
    )
    .expect("a valid split binds");
    let mut granted = None;
    submit(
        mediator.local_addr(),
        &quickstart_json(),
        &SubmitOpts::default(),
        |p| {
            if let Progress::Accepted { memory_bytes, .. } = p {
                granted = Some(memory_bytes);
            }
        },
    )
    .expect("run");
    assert_eq!(
        granted,
        Some((48 << 20) / 2),
        "partition = (memory - cache) / max_concurrent"
    );
    mediator.shutdown();
}

/// The shared-pool acceptance check: N concurrent sessions on a mediator
/// with `--exec-workers 4` all draw morsel execution from ONE process-wide
/// pool, and every one of them returns the same answer a solo session
/// does — concurrency and work-stealing never leak into results. Each
/// session's memory high-water must also stay inside the per-session
/// partition the mediator granted it.
#[test]
fn concurrent_sessions_share_one_exec_pool_without_perturbing_answers() {
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            exec_workers: 4,
            max_concurrent: 3,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let addr = mediator.local_addr();

    // Solo baseline on the same (pooled) mediator.
    let solo = submit(addr, &quickstart_json(), &SubmitOpts::default(), |_| {}).expect("solo run");
    assert!(
        metric_u64(&solo.raw, "morsels") > 0,
        "a 4-worker mediator must split quickstart batches into morsels: {}",
        solo.raw
    );

    // Three sessions at once, each recording its granted partition.
    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut granted = None;
                let m = submit(addr, &quickstart_json(), &SubmitOpts::default(), |p| {
                    if let Progress::Accepted { memory_bytes, .. } = p {
                        granted = Some(memory_bytes);
                    }
                })
                .expect("concurrent run");
                (m, granted.expect("lifecycle passes through Accepted"))
            })
        })
        .collect();
    for client in clients {
        let (m, granted) = client.join().expect("client thread");
        assert_eq!(
            m.output_tuples, solo.output_tuples,
            "a session sharing the pool must answer exactly like a solo one"
        );
        assert!(metric_u64(&m.raw, "morsels") > 0);
        assert!(
            metric_u64(&m.raw, "memory_high_water") <= granted,
            "morsel slabs must stay inside the granted partition: {}",
            m.raw
        );
    }

    // The pool gauges are wired: all that morsel traffic went through the
    // one shared pool the metrics endpoint watches.
    let metrics = mediator.metrics();
    assert!(metrics.exec_busy_workers() <= 4);
    let _ = metrics.exec_steals(); // gauge reachable (steals may be zero)
    mediator.shutdown();
}

/// Shutdown must sever idle client connections and join their handler
/// threads instead of waiting out the 60-second read timeout (or leaking
/// the threads outright).
#[test]
fn mediator_shutdown_severs_idle_clients_promptly() {
    let mediator = MediatorServer::bind("127.0.0.1:0", ServeOpts::default()).expect("bind");
    let idle = std::net::TcpStream::connect(mediator.local_addr()).expect("connect");
    // Give the accept loop a beat to register the connection and spawn
    // its handler.
    std::thread::sleep(Duration::from_millis(200));
    let start = std::time::Instant::now();
    mediator.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown must not wait out client read timeouts"
    );
    drop(idle);
}
