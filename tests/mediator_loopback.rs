//! Loopback integration tests for the networked mediator: wrapper-server
//! and mediator in one process on ephemeral ports, real TCP in between.
//!
//! The deterministic parts of a run — wrapper payloads, join fan-out,
//! output cardinality — depend only on the seed, not on timing, so a
//! query answered across sockets must produce exactly the tuples the
//! in-process real-time engine produces.

use std::sync::mpsc::channel;
use std::time::Duration;

use dqs_core::DsePolicy;
use dqs_exec::spec::WorkloadSpec;
use dqs_exec::{run_workload_realtime, Engine, JsonLinesSink, RealTimeDriver, RunError, Workload};
use dqs_mediator::{submit, MediatorServer, Progress, ServeOpts, SubmitOpts, WrapperServer};
use dqs_source::{BoxSource, RemoteOpen, RemoteWrapper, SourceError};

fn quickstart_json() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/specs/quickstart.json"
    ))
    .expect("quickstart spec readable")
}

fn quickstart_workload() -> Workload {
    WorkloadSpec::from_json(&quickstart_json())
        .and_then(WorkloadSpec::into_workload)
        .expect("quickstart spec valid")
}

/// The tentpole acceptance check: wrapper-server + mediator + client on
/// loopback return the same cardinality as the in-process real-time run
/// of the same spec and seed.
#[test]
fn loopback_flow_matches_in_process_realtime_run() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![wrapper.local_addr().to_string()],
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");

    let mut workload = quickstart_workload();
    // The mediator partitions its budget; give the local baseline the
    // same partition so the runs are configured identically.
    workload.config.memory_bytes = (64 << 20) / 2;
    let local = run_workload_realtime(&workload, DsePolicy::new()).expect("local run");

    let mut saw_accept = false;
    let remote = submit(
        mediator.local_addr(),
        &quickstart_json(),
        &SubmitOpts::default(),
        |p| {
            if matches!(p, Progress::Accepted { .. }) {
                saw_accept = true;
            }
        },
    )
    .expect("remote run");

    assert!(saw_accept, "lifecycle must pass through Accepted");
    assert_eq!(
        remote.output_tuples, local.output_tuples,
        "networked and in-process runs must agree on the answer"
    );
    assert_eq!(remote.strategy, "DSE");
    assert!(remote.response_secs > 0.0);

    mediator.shutdown();
    wrapper.shutdown();
}

/// Tracing streams engine events back as frames, ending in the same
/// JSON-lines shapes the in-process sink writes.
#[test]
fn trace_frames_stream_engine_events_to_the_client() {
    let mediator =
        MediatorServer::bind("127.0.0.1:0", ServeOpts::default()).expect("bind mediator");
    let mut lines = Vec::new();
    let remote = submit(
        mediator.local_addr(),
        &quickstart_json(),
        &SubmitOpts {
            trace: true,
            ..SubmitOpts::default()
        },
        |p| {
            if let Progress::TraceLine(l) = p {
                lines.push(l);
            }
        },
    )
    .expect("traced run");
    assert!(remote.output_tuples > 0);
    assert!(!lines.is_empty(), "trace requested but no lines arrived");
    for l in &lines {
        let v = dqs_exec::json::parse(l).expect("each trace line is valid JSON");
        assert!(v.as_object().is_some());
    }
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"arrival\"")),
        "a run always has arrivals"
    );
    mediator.shutdown();
}

/// A bad spec is rejected without consuming an execution slot.
#[test]
fn malformed_spec_is_rejected_not_run() {
    let mediator =
        MediatorServer::bind("127.0.0.1:0", ServeOpts::default()).expect("bind mediator");
    let err = submit(
        mediator.local_addr(),
        "{\"relations\": []}",
        &SubmitOpts::default(),
        |_| {},
    )
    .expect_err("empty relation list cannot plan");
    assert!(
        matches!(err, dqs_mediator::ClientError::Rejected(_)),
        "{err}"
    );
    let stats = mediator.stats();
    assert_eq!(stats.admitted, 0, "no slot consumed");
    mediator.shutdown();
}

/// An unknown strategy is likewise rejected up front.
#[test]
fn unknown_strategy_is_rejected() {
    let mediator =
        MediatorServer::bind("127.0.0.1:0", ServeOpts::default()).expect("bind mediator");
    let err = submit(
        mediator.local_addr(),
        &quickstart_json(),
        &SubmitOpts {
            strategy: "greedy".into(),
            ..SubmitOpts::default()
        },
        |_| {},
    )
    .expect_err("unknown strategy");
    assert!(
        matches!(err, dqs_mediator::ClientError::Rejected(_)),
        "{err}"
    );
    mediator.shutdown();
}

/// A slow workload spec: few enough tuples to finish fast when drained,
/// but paced slowly enough that a mid-query kill reliably lands.
fn slow_workload() -> Workload {
    WorkloadSpec::from_json(
        r#"{
            "relations": [
                {"name": "r", "cardinality": 20000, "delay": {"constant_us": 400}},
                {"name": "s", "cardinality": 20000, "delay": {"constant_us": 400}}
            ],
            "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
        }"#,
    )
    .and_then(WorkloadSpec::into_workload)
    .expect("slow spec valid")
}

/// Kill the wrapper mid-query at the engine level: the run must abort
/// with a typed `RunError::Wrapper`, not hang — and the abort must appear
/// as an `EngineEvent::Aborted` JSON trace line.
#[test]
fn killing_the_wrapper_mid_query_aborts_cleanly() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let addr = wrapper.local_addr();
    let workload = slow_workload();

    // Dial a RemoteWrapper per relation, exactly as the mediator does.
    let driver = RealTimeDriver::try_with_sources(|notify| {
        workload
            .catalog
            .iter()
            .map(|(rel, spec)| {
                let open = RemoteOpen {
                    rel,
                    total: workload.actual_cardinality(rel),
                    window: workload.config.queue_capacity as u32,
                    seed: workload.config.seed,
                    stream: format!("wrapper:{}", spec.name),
                    delay: workload.delays[rel.0 as usize].clone(),
                };
                RemoteWrapper::connect(addr, open, notify.clone(), Duration::from_secs(10))
                    .map(|w| Box::new(w) as BoxSource)
            })
            .collect::<Result<Vec<_>, SourceError>>()
    })
    .expect("wrappers reachable");

    let (done_tx, done_rx) = channel();
    let run_workload = workload;
    std::thread::spawn(move || {
        let mut trace = Vec::new();
        let sink = JsonLinesSink::new(&mut trace);
        let result = Engine::with_driver(&run_workload, DsePolicy::new(), sink, driver).try_run();
        done_tx
            .send((result, String::from_utf8(trace).unwrap()))
            .ok();
    });

    // Let the query get going, then sever every wrapper connection.
    std::thread::sleep(Duration::from_millis(500));
    wrapper.drop_connections();

    let (result, trace) = done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("the run must abort, not hang");
    match result {
        Err(RunError::Wrapper { error, .. }) => {
            assert_eq!(error.kind(), "disconnected", "{error}");
        }
        other => panic!("expected a wrapper abort, got {other:?}"),
    }
    assert!(
        trace.contains("\"type\":\"abort\",\"kind\":\"wrapper\""),
        "the abort must surface as an EngineEvent::Aborted trace line:\n{}",
        trace.lines().last().unwrap_or("")
    );
    wrapper.shutdown();
}

/// The same kill, end to end: a submitting client gets a terminal Error
/// frame naming the wrapper failure.
#[test]
fn killing_the_wrapper_surfaces_to_the_client() {
    let wrapper = WrapperServer::bind("127.0.0.1:0").expect("bind wrapper");
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            wrappers: vec![wrapper.local_addr().to_string()],
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");

    let slow_spec = r#"{
        "relations": [
            {"name": "r", "cardinality": 20000, "delay": {"constant_us": 400}},
            {"name": "s", "cardinality": 20000, "delay": {"constant_us": 400}}
        ],
        "joins": [{"left": "r", "right": "s", "selectivity": 0.0001}]
    }"#;

    let (kill_tx, kill_rx) = channel();
    let addr = mediator.local_addr();
    let client = std::thread::spawn(move || {
        submit(addr, slow_spec, &SubmitOpts::default(), |p| {
            if matches!(p, Progress::Accepted { .. }) {
                kill_tx.send(()).ok();
            }
        })
    });
    kill_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("session accepted");
    std::thread::sleep(Duration::from_millis(400));
    wrapper.drop_connections();

    let err = client
        .join()
        .expect("client thread")
        .expect_err("the query must fail");
    match err {
        dqs_mediator::ClientError::Server(msg) => {
            assert!(
                msg.contains("wrapper") && msg.contains("disconnected"),
                "{msg}"
            );
        }
        other => panic!("expected a server-side abort, got {other}"),
    }
    mediator.shutdown();
    wrapper.shutdown();
}
