//! §1.2/§1.3: the three delay classes — initial delay, bursty arrival, slow
//! delivery — and the claim that dynamic scheduling improves all of them
//! without any timeout tuning ("our approach is independent of any timeout
//! mechanism ... particularly suited to slow delivery cases").

use dqs_bench::{run_once, StrategyKind};
use dqs_exec::Workload;
use dqs_sim::SimDuration;
use dqs_source::DelayModel;

fn fig5_with_a_delay(model: DelayModel) -> Workload {
    let (base, f5) = Workload::fig5();
    base.with_delay(f5.rels.a, model)
}

fn gains(model: DelayModel) -> (f64, f64) {
    let w = fig5_with_a_delay(model);
    let seq = run_once(&w, StrategyKind::Seq);
    let ma = run_once(&w, StrategyKind::Ma);
    let dse = run_once(&w, StrategyKind::Dse);
    (dse.gain_over(&seq), ma.gain_over(&seq))
}

#[test]
fn initial_delay_absorbed() {
    let w_min = SimDuration::from_micros(20);
    let (dse, _ma) = gains(DelayModel::Initial {
        initial: SimDuration::from_secs(3),
        mean: w_min,
    });
    assert!(
        dse > 0.30,
        "initial delay should be hidden by DSE, gain {:.1}%",
        dse * 100.0
    );
}

#[test]
fn bursty_arrival_absorbed() {
    let (dse, _ma) = gains(DelayModel::Bursty {
        burst: 15_000,
        within: SimDuration::from_micros(20),
        pause: SimDuration::from_millis(300),
    });
    assert!(
        dse > 0.30,
        "bursty arrival should be hidden by DSE, gain {:.1}%",
        dse * 100.0
    );
}

#[test]
fn slow_delivery_absorbed() {
    // The case scrambling cannot handle (§1.2: "the authors have not
    // provided any solution to the problem of slow delivery").
    let (dse, _ma) = gains(DelayModel::Uniform {
        mean: SimDuration::from_micros(80),
    });
    assert!(
        dse > 0.25,
        "slow delivery should be hidden by DSE, gain {:.1}%",
        dse * 100.0
    );
}

#[test]
fn dse_beats_ma_on_every_delay_class() {
    let w_min = SimDuration::from_micros(20);
    let cases = [
        DelayModel::Initial {
            initial: SimDuration::from_secs(3),
            mean: w_min,
        },
        DelayModel::Bursty {
            burst: 15_000,
            within: w_min,
            pause: SimDuration::from_millis(300),
        },
        DelayModel::Uniform {
            mean: SimDuration::from_micros(80),
        },
    ];
    for model in cases {
        let (dse, ma) = gains(model.clone());
        assert!(
            dse > ma,
            "DSE ({:.1}%) must beat MA ({:.1}%) for {model:?}",
            dse * 100.0,
            ma * 100.0
        );
    }
}

#[test]
fn timeouts_fire_only_during_true_starvation() {
    // A 3-second initial delay on every wrapper leaves the DQP with nothing
    // to do: the §3.2 TimeOut interruption must fire.
    let (base, _) = Workload::fig5();
    let w = base.with_all_delays(DelayModel::Initial {
        initial: SimDuration::from_secs(3),
        mean: SimDuration::from_micros(20),
    });
    let m = run_once(&w, StrategyKind::Dse);
    assert!(
        m.timeouts >= 1,
        "global initial delay must trip the timeout"
    );

    // At steady w_min pacing it must not.
    let (steady, _) = Workload::fig5();
    let m2 = run_once(&steady, StrategyKind::Dse);
    assert_eq!(m2.timeouts, 0, "no starvation at w_min");
}

#[test]
fn rate_change_interruptions_trigger_replanning() {
    // A wrapper that turns drastically slower mid-stream must raise
    // RateChange (§3.2) and cause additional planning phases.
    let (base, f5) = Workload::fig5();
    let w = base.with_delay(
        f5.rels.c,
        DelayModel::Bursty {
            burst: 60_000,
            within: SimDuration::from_micros(20),
            pause: SimDuration::from_secs(1),
        },
    );
    let m = run_once(&w, StrategyKind::Dse);
    assert!(
        m.rate_changes >= 1,
        "a 1 s silence after 60k fast tuples must register as a rate change"
    );
    assert_eq!(m.output_tuples, 90_000);
}
