//! Cross-strategy integration tests: whatever the scheduling strategy, the
//! *answer* must be identical — only the response time may differ — and no
//! strategy may beat the analytic lower bound.

use dqs_bench::{run_once, StrategyKind};
use dqs_core::lwb;
use dqs_exec::Workload;
use dqs_plan::{generate, Catalog, GeneratorConfig, QepBuilder};
use dqs_sim::{SeedSplitter, SimDuration};
use dqs_source::DelayModel;

/// A small three-way join with mixed fan-outs and a selective scan.
fn three_way() -> Workload {
    let mut cat = Catalog::new();
    let a = cat.add("A", 4_000);
    let b = cat.add("B", 6_000);
    let c = cat.add("C", 8_000);
    let mut qb = QepBuilder::new();
    let sa = qb.scan(a, 0.5);
    let sb = qb.scan(b, 1.0);
    let j1 = qb.hash_join(sa, sb, 2.0);
    let sc = qb.scan(c, 0.75);
    let j2 = qb.hash_join(j1, sc, 1.5);
    Workload::new(cat, qb.finish(j2).unwrap())
}

#[test]
fn all_strategies_agree_on_the_answer() {
    let w = three_way();
    // Expected: C: 8000 × 0.75 × 1.5 = 9000.
    let mut outputs = Vec::new();
    for s in StrategyKind::ALL {
        let m = run_once(&w, s);
        assert_eq!(m.output_tuples, 9_000, "{} output", s.name());
        outputs.push(m.output_tuples);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn answers_survive_slow_wrappers() {
    let slow = DelayModel::Uniform {
        mean: SimDuration::from_micros(300),
    };
    for rel in 0..3u16 {
        let w = three_way().with_delay(dqs_relop::RelId(rel), slow.clone());
        for s in StrategyKind::ALL {
            let m = run_once(&w, s);
            assert_eq!(
                m.output_tuples,
                9_000,
                "{} with slow relation {rel}",
                s.name()
            );
        }
    }
}

#[test]
fn no_strategy_beats_the_lower_bound() {
    for mean_us in [20u64, 100, 500] {
        let w = three_way().with_all_delays(DelayModel::Uniform {
            mean: SimDuration::from_micros(mean_us),
        });
        // The retrieval term of LWB is an expectation; discount by five
        // standard deviations of the sampled delay sum.
        let bound = lwb(&w).probabilistic_bound(5.0).as_secs_f64();
        for s in StrategyKind::ALL {
            let m = run_once(&w, s);
            assert!(
                m.response_secs() >= bound,
                "{} at {mean_us}µs: {} < LWB {bound}",
                s.name(),
                m.response_secs()
            );
        }
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let w = three_way().with_all_delays(DelayModel::Uniform {
        mean: SimDuration::from_micros(100),
    });
    for s in StrategyKind::ALL {
        let a = run_once(&w.clone().with_seed(99), s);
        let b = run_once(&w.clone().with_seed(99), s);
        assert_eq!(a.response_time, b.response_time, "{}", s.name());
        assert_eq!(a.events, b.events);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.pages_written, b.pages_written);
        assert_eq!(a.plans, b.plans);
    }
}

#[test]
fn different_seeds_vary_only_stochastic_runs() {
    // Uniform delays: response varies with the seed (but the answer never).
    let w = three_way().with_all_delays(DelayModel::Uniform {
        mean: SimDuration::from_micros(100),
    });
    let a = run_once(&w.clone().with_seed(1), StrategyKind::Dse);
    let b = run_once(&w.clone().with_seed(2), StrategyKind::Dse);
    assert_eq!(a.output_tuples, b.output_tuples);
    assert_ne!(
        a.response_time, b.response_time,
        "uniform delays must be seed-dependent"
    );
}

#[test]
fn generated_queries_agree_across_strategies() {
    for seed in 0..8u64 {
        let mut rng = SeedSplitter::new(seed).stream("strategies-gen");
        let q = generate(
            &GeneratorConfig {
                relations: 5,
                cardinality: (500, 3_000),
                scan_selectivity: (0.5, 1.0),
                join_fanout: (0.5, 1.2),
            },
            &mut rng,
        );
        let w = Workload::new(q.catalog, q.qep);
        let outs: Vec<u64> = StrategyKind::ALL
            .iter()
            .map(|&s| run_once(&w, s).output_tuples)
            .collect();
        assert_eq!(outs[0], outs[1], "seed {seed}: SEQ vs MA");
        assert_eq!(outs[0], outs[2], "seed {seed}: SEQ vs DSE");
    }
}

#[test]
fn dse_never_loses_badly_to_seq() {
    // Whatever the delays, DSE should be within a small overhead margin of
    // SEQ (it degrades only when the bmi predicts profit).
    for mean_us in [5u64, 20, 100, 400] {
        let w = three_way().with_all_delays(DelayModel::Uniform {
            mean: SimDuration::from_micros(mean_us),
        });
        let seq = run_once(&w, StrategyKind::Seq);
        let dse = run_once(&w, StrategyKind::Dse);
        let ratio = dse.response_secs() / seq.response_secs();
        assert!(
            ratio < 1.10,
            "at {mean_us}µs DSE/SEQ = {ratio:.3} (DSE {} vs SEQ {})",
            dse.response_time,
            seq.response_time
        );
    }
}
