//! Morsel-parallel answer parity: running the engine with any worker
//! count must produce *bit-identical answers* to serial execution.
//!
//! The worker pool changes the modeled response time (the chain charge is
//! a W-lane makespan instead of one instruction sum) — that's the point —
//! and the faster modeled CPU may shift batch boundaries against wrapper
//! arrivals, so batch and plan *counts* can differ between worker counts.
//! The query answer must not, whatever the worker count and whichever
//! workers physically ran (or stole) which morsel.

use dqs_bench::fingerprint::{metrics_signature, parity_workloads};
use dqs_bench::{run_once, StrategyKind};
use dqs_exec::Workload;
use dqs_plan::{generate, GeneratorConfig};
use dqs_sim::SeedSplitter;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// Everything answer-shaped in a run's metrics: the output cardinality
/// plus the per-query output counts implied by the response list length.
/// Response *times* are deliberately excluded — they model the speedup.
fn answer_of(m: &dqs_exec::RunMetrics) -> (u64, Vec<u32>) {
    (
        m.output_tuples,
        m.query_responses.iter().map(|(q, _)| *q).collect(),
    )
}

/// The parity matrix: every golden workload × every strategy × workers in
/// {1, 2, 4, 8} agrees on the answer, and each parallel configuration is
/// itself deterministic (two runs fingerprint identically even though the
/// physical steal order differs).
#[test]
fn morsel_parallel_answers_match_serial_on_the_parity_matrix() {
    for (name, workload) in parity_workloads() {
        for strategy in StrategyKind::WITH_SPM {
            let serial = run_once(&workload, strategy);
            for &workers in &WORKER_COUNTS {
                let w = workload.clone().with_workers(workers);
                let a = run_once(&w, strategy);
                assert_eq!(
                    answer_of(&a),
                    answer_of(&serial),
                    "{name}/{}/workers={workers}: answer diverged from serial",
                    strategy.name()
                );
                // NOTE deliberately unasserted: batches/plans may shift —
                // the faster modeled CPU drains queues at different
                // instants, so batch boundaries move. The answer must not.
                let b = run_once(&w, strategy);
                assert_eq!(
                    metrics_signature(&a),
                    metrics_signature(&b),
                    "{name}/{}/workers={workers}: parallel run not deterministic",
                    strategy.name()
                );
            }
        }
    }
}

/// Morsels are only charged when they run: a serial run reports zero, and
/// a parallel run of a workload with full batches reports at least one.
#[test]
fn morsel_counters_reflect_the_execution_path() {
    let (fig5, _) = Workload::fig5();
    let serial = run_once(&fig5.clone().with_seed(42), StrategyKind::Dse);
    assert_eq!(serial.morsels, 0, "serial runs must not dispatch morsels");
    assert_eq!(serial.steals, 0);

    let parallel = run_once(&fig5.with_seed(42).with_workers(4), StrategyKind::Dse);
    assert!(
        parallel.morsels > 0,
        "a 4-worker run of fig5 must split batches into morsels"
    );
    assert_eq!(parallel.output_tuples, serial.output_tuples);
}

/// Random bushy queries from the generator, compact descriptors so
/// shrinking stays meaningful (same scheme as `engine_invariants`).
fn random_workload(seed: u64, relations: usize) -> Workload {
    let mut rng = SeedSplitter::new(seed).stream("morsel-parity");
    let q = generate(
        &GeneratorConfig {
            relations,
            cardinality: (200, 2_500),
            scan_selectivity: (0.4, 1.0),
            join_fanout: (0.4, 1.3),
        },
        &mut rng,
    );
    Workload::new(q.catalog, q.qep)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// For random queries, random seeds, every strategy and every worker
    /// count: the answer is bit-identical to serial.
    #[test]
    fn answers_are_worker_count_invariant(
        gen_seed in 0u64..10_000,
        run_seed in 0u64..10_000,
        relations in 2usize..6,
        morsel_tuples in 16usize..256,
    ) {
        let base = random_workload(gen_seed, relations).with_seed(run_seed);
        for strategy in StrategyKind::ALL {
            let serial = run_once(&base, strategy);
            for &workers in &WORKER_COUNTS {
                let mut w = base.clone().with_workers(workers);
                w.config.morsel_tuples = morsel_tuples;
                let m = run_once(&w, strategy);
                prop_assert_eq!(
                    answer_of(&m),
                    answer_of(&serial),
                    "{}/workers={}/morsel={}: answer diverged",
                    strategy.name(), workers, morsel_tuples
                );
            }
        }
    }
}
