//! Workload subsystem integration tests: the generator's determinism
//! contract (equal seeds ⇒ byte-identical traces), the trace file
//! round-trip, and an end-to-end replay of a generated Zipf/Poisson
//! trace against an in-process mediator under SJF admission.
//!
//! The admission-policy unit tests (FIFO invariant, SJF cheapest-first,
//! fair aging bounds starvation) live with `SessionTable` in
//! `dqs-core`; these tests cover the harness built on top of it.

use std::time::Duration;

use dqs_mediator::{MediatorServer, ServeOpts};
use dqs_workload::{generate, replay, Arrival, GenOpts, Grammar, ReplayOpts, Trace};
use proptest::prelude::*;

fn opts(seed: u64, specs: usize, events: usize, zipf_s: f64, arrival: Arrival) -> GenOpts {
    GenOpts {
        seed,
        specs,
        events,
        zipf_s,
        arrival,
        grammar: Grammar::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// The headline generator contract: the same options produce a
    /// byte-identical trace file, for every arrival process.
    #[test]
    fn equal_seeds_generate_byte_identical_traces(
        seed in 0u64..100_000,
        specs in 1usize..12,
        events in 1usize..200,
        zipf_s in 0.0f64..2.0,
        which in 0usize..3,
    ) {
        let arrival = match which {
            0 => Arrival::Poisson { rate_per_sec: 150.0 },
            1 => Arrival::Bursty { rate_per_sec: 300.0, on_ms: 100, off_ms: 150 },
            _ => Arrival::Diurnal { base_per_sec: 20.0, peak_per_sec: 200.0, period_ms: 2_000 },
        };
        let a = generate(&opts(seed, specs, events, zipf_s, arrival.clone()));
        let b = generate(&opts(seed, specs, events, zipf_s, arrival));
        prop_assert_eq!(a.to_json(), b.to_json());
        // And a different seed perturbs *something* (arrival schedule or
        // specs) for any non-trivial trace.
        let c = generate(&opts(seed ^ 0xDEAD_BEEF, specs, events, zipf_s,
            Arrival::Poisson { rate_per_sec: 150.0 }));
        if events >= 8 {
            prop_assert_ne!(a.to_json(), c.to_json());
        }
    }

    /// The trace file round-trips: parse(serialize(t)) == t.
    #[test]
    fn trace_json_round_trips(
        seed in 0u64..100_000,
        specs in 1usize..8,
        events in 1usize..100,
    ) {
        let t = generate(&opts(seed, specs, events, 1.1,
            Arrival::Poisson { rate_per_sec: 200.0 }));
        let back = Trace::from_json(&t.to_json()).expect("trace parses");
        prop_assert_eq!(t.to_json(), back.to_json());
    }
}

/// End-to-end: a generated Zipf/Poisson trace replayed open-loop
/// against a live in-process mediator with `--admission sjf` and the
/// result cache on. Every session must complete, Zipf repeats must hit
/// the cache, and the server must have recorded queue-wait samples.
#[test]
fn generated_trace_replays_cleanly_under_sjf_admission() {
    let trace = generate(&opts(
        7,
        6,
        120,
        1.2,
        Arrival::Poisson {
            rate_per_sec: 150.0,
        },
    ));
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            max_concurrent: 4,
            backlog: 256,
            cache_bytes: 8 << 20,
            admission: dqs_core::AdmissionPolicy::Sjf,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");

    let report = replay(
        &trace,
        &ReplayOpts {
            addr: mediator.local_addr().to_string(),
            connect_batch: 50,
            timeout: Duration::from_secs(120),
        },
    )
    .expect("replay runs");

    assert_eq!(report.errored, 0, "no session may fail: {report:?}");
    assert_eq!(report.rejected, 0, "backlog was sized for the trace");
    assert_eq!(report.completed, trace.events.len());
    assert!(
        report.cache_hits > 0,
        "Zipf repeats of a popular spec must hit the result cache"
    );
    assert!(report.total.p99_ms >= report.total.p50_ms);
    assert!(report.total.p999_ms >= report.total.p99_ms);
    // The latency split is a decomposition of the total.
    assert!(report.total.max_ms >= report.exec.p50_ms);

    // The server-side queue-wait instrumentation saw every session.
    let hist = mediator.metrics().queue_wait_histogram();
    assert_eq!(
        hist.count(),
        trace.events.len() as u64,
        "one queue-wait sample per executed session"
    );

    // The report round-trips through its own JSON.
    let v = dqs_exec::json::parse(&report.to_json()).expect("report JSON");
    assert!(v.as_object().is_some());
    mediator.shutdown();
}

/// The same flood trace the `dqs bench c10k` preset uses, replayed under
/// FIFO: positions reported by `Queued` frames follow arrival order, and
/// the queue-wait split is nonzero once sessions actually park.
#[test]
fn flood_trace_queue_wait_split_is_visible_under_fifo() {
    let spec = r#"{
        "relations": [
            {"name": "a", "cardinality": 64, "delay": {"constant_us": 500}},
            {"name": "b", "cardinality": 64, "delay": {"constant_us": 500}}
        ],
        "joins": [{"left": "a", "right": "b", "selectivity": 0.002}],
        "config": {"seed": 7}
    }"#;
    let trace = Trace::flood(40, spec, "dse");
    let mediator = MediatorServer::bind(
        "127.0.0.1:0",
        ServeOpts {
            max_concurrent: 1,
            backlog: 64,
            ..ServeOpts::default()
        },
    )
    .expect("bind mediator");
    let report = replay(
        &trace,
        &ReplayOpts {
            addr: mediator.local_addr().to_string(),
            connect_batch: 40,
            timeout: Duration::from_secs(120),
        },
    )
    .expect("replay runs");
    assert_eq!(report.errored, 0, "{report:?}");
    assert_eq!(report.completed, 40);
    assert!(
        report.queued_sessions >= 30,
        "one slot must park nearly the whole flood (saw {})",
        report.queued_sessions
    );
    // With one slot, queue wait dominates execution at the tail.
    assert!(
        report.queue_wait.p99_ms > report.exec.p50_ms,
        "queue-wait split must capture the backlog time: {report:?}"
    );
    mediator.shutdown();
}
