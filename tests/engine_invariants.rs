//! Property-based engine invariants: for randomly generated bushy queries
//! and random delay configurations, every strategy must produce the same
//! answer, respect the lower bound, conserve tuples, and replay
//! bit-identically.

use dqs_bench::{run_once, StrategyKind};
use dqs_core::lwb;
use dqs_exec::Workload;
use dqs_plan::{generate, AnnotatedPlan, ChainSet, GeneratorConfig};
use dqs_relop::RelId;
use dqs_sim::{SeedSplitter, SimDuration, SimParams};
use dqs_source::DelayModel;
use proptest::prelude::*;

/// Build a random workload from a compact descriptor so proptest shrinking
/// stays meaningful.
fn workload_from(seed: u64, relations: usize, slow_rel: usize, slow_factor: u64) -> Workload {
    let mut rng = SeedSplitter::new(seed).stream("engine-invariants");
    let q = generate(
        &GeneratorConfig {
            relations,
            cardinality: (200, 2_500),
            scan_selectivity: (0.4, 1.0),
            join_fanout: (0.4, 1.3),
        },
        &mut rng,
    );
    let n = q.catalog.len();
    let w = Workload::new(q.catalog, q.qep);
    let rel = RelId((slow_rel % n) as u16);
    w.with_delay(
        rel,
        DelayModel::Uniform {
            mean: SimDuration::from_micros(20 * slow_factor),
        },
    )
}

/// Analytic output cardinality: source card × product of fan-outs along the
/// output chain, with flooring applied per operator (matches the
/// deterministic fan-out accumulators exactly only for integral fan-outs,
/// so we assert agreement *between strategies* rather than against this).
fn expected_floor(plan: &AnnotatedPlan) -> u64 {
    plan.info
        .iter()
        .map(|i| i.output_card)
        .fold(0.0f64, f64::max) as u64
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn strategies_agree_and_respect_lwb(
        seed in 0u64..10_000,
        relations in 2usize..7,
        slow_rel in 0usize..8,
        slow_factor in 1u64..30,
    ) {
        let w = workload_from(seed, relations, slow_rel, slow_factor);
        // The retrieval term of LWB is an expectation; discount it by five
        // standard deviations of the sampled delay sum.
        let bound = lwb(&w).probabilistic_bound(5.0).as_secs_f64();
        let mut outputs = Vec::new();
        for s in StrategyKind::ALL {
            let m = run_once(&w, s);
            prop_assert!(
                m.response_secs() >= bound,
                "{} {} < LWB {bound}", s.name(), m.response_secs()
            );
            // Conservation: outputs bounded by the estimate's ceiling.
            let plan = AnnotatedPlan::annotate(
                ChainSet::decompose(&w.qep), &w.catalog, &SimParams::default());
            let est = expected_floor(&plan);
            prop_assert!(
                m.output_tuples <= est + plan.chains.len() as u64,
                "{}: {} tuples vs estimate {est}", s.name(), m.output_tuples
            );
            outputs.push(m.output_tuples);
        }
        prop_assert_eq!(outputs[0], outputs[1]);
        prop_assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn replay_is_bit_identical(
        seed in 0u64..10_000,
        relations in 2usize..6,
    ) {
        let w = workload_from(seed, relations, 0, 10);
        for s in StrategyKind::ALL {
            let a = run_once(&w.clone().with_seed(seed), s);
            let b = run_once(&w.clone().with_seed(seed), s);
            prop_assert_eq!(a.response_time, b.response_time);
            prop_assert_eq!(a.events, b.events);
            prop_assert_eq!(a.cpu_busy, b.cpu_busy);
            prop_assert_eq!(a.disk_busy, b.disk_busy);
        }
    }

    #[test]
    fn dse_metrics_are_coherent(
        seed in 0u64..10_000,
        relations in 2usize..7,
        slow_factor in 1u64..25,
    ) {
        let w = workload_from(seed, relations, 1, slow_factor);
        let m = run_once(&w, StrategyKind::Dse);
        // Time accounting: the processor cannot be busy longer than the run.
        prop_assert!(m.cpu_busy <= m.response_time);
        prop_assert!(m.stall_time <= m.response_time);
        // Every degradation writes what it later reads (reads may exceed
        // writes only by read-ahead rounding).
        prop_assert!(m.pages_read <= m.pages_written + 64);
        // Planning happened at least once, and once per EndOfQF.
        prop_assert!(m.plans > m.end_of_qf.min(1));
    }
}

#[test]
fn queue_capacity_never_changes_the_answer() {
    for cap in [130usize, 512, 4096] {
        let mut w = workload_from(42, 4, 0, 12);
        w.config.queue_capacity = cap;
        w.config.batch_size = w.config.batch_size.min(cap);
        let outs: Vec<u64> = StrategyKind::ALL
            .iter()
            .map(|&s| run_once(&w, s).output_tuples)
            .collect();
        assert_eq!(outs[0], outs[1], "cap {cap}");
        assert_eq!(outs[1], outs[2], "cap {cap}");
    }
}

#[test]
fn batch_size_never_changes_the_answer() {
    let mut baseline = None;
    for batch in [16usize, 64, 256, 813] {
        let mut w = workload_from(43, 4, 2, 8);
        w.config.batch_size = batch;
        w.config.queue_capacity = w.config.queue_capacity.max(batch);
        let out = run_once(&w, StrategyKind::Dse).output_tuples;
        if let Some(b) = baseline {
            assert_eq!(out, b, "batch {batch}");
        }
        baseline = Some(out);
    }
}
